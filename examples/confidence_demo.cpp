// Completion-confidence demo (Section 6): how certain is ReStore about the
// data it synthesizes? The engine reports a 95% confidence interval for a
// count query over a completed table; low attribute predictability yields a
// wide interval, high predictability a tight one.
//
//   $ ./build/examples/confidence_demo

#include <cstdio>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "restore/confidence.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"

using namespace restore;

namespace {

/// Returns false (after printing the failure) if the scenario could not run.
bool RunOne(double predictability) {
  SyntheticConfig config;
  config.num_parents = 300;
  config.predictability = predictability;
  config.seed = 51;
  auto complete = GenerateSynthetic(config);
  if (!complete.ok()) {
    std::fprintf(stderr, "generating data failed: %s\n",
                 complete.status().ToString().c_str());
    return false;
  }
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.4;
  removal.seed = 52;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  if (!incomplete.ok()) {
    std::fprintf(stderr, "applying biased removal failed: %s\n",
                 incomplete.status().ToString().c_str());
    return false;
  }
  if (auto s = ThinTupleFactors(&*incomplete, 0.3, 53); !s.ok()) {
    std::fprintf(stderr, "thinning tuple factors failed: %s\n",
                 s.ToString().c_str());
    return false;
  }
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");

  PathModelConfig model_config;
  auto model = PathModel::Train(*incomplete, annotation,
                                {"table_a", "table_b"}, model_config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return false;
  }

  // Complete while recording the predictive distribution of b.
  IncompletenessJoinExecutor exec(&*incomplete, &annotation);
  Rng rng(54);
  CompletionOptions options;
  options.record_table = "table_b";
  options.record_column = "b";
  auto completion = exec.CompletePathJoin(**model, rng, options);
  if (!completion.ok()) {
    std::fprintf(stderr, "completion failed: %s\n",
                 completion.status().ToString().c_str());
    return false;
  }

  // Confidence interval of the fraction of value "b0".
  const Table& partial = *incomplete->GetTable("table_b").value();
  const Column* col = partial.GetColumn("b").value();
  auto code = col->dictionary()->Lookup("b0");
  if (!code.ok()) {
    std::fprintf(stderr, "value 'b0' not in dictionary: %s\n",
                 code.status().ToString().c_str());
    return false;
  }
  size_t existing_with_value = 0;
  for (size_t r = 0; r < col->size(); ++r) {
    if (col->GetCode(r) == code.value()) ++existing_with_value;
  }
  const int attr = (*model)->FindAttr("table_b", "b");
  ConfidenceInterval ci = CountFractionInterval(
      completion->recorded_probs,
      (*model)->TrainMarginal(static_cast<size_t>(attr)),
      static_cast<size_t>(code.value()), existing_with_value,
      partial.NumRows(), 0.95);
  auto true_frac =
      CategoricalFraction(*complete->GetTable("table_b").value(), "b", "b0");
  std::printf(
      "predictability %3.0f%%: true fraction %.3f, 95%% CI [%.3f, %.3f] "
      "(width %.3f, theoretical [%.3f, %.3f])\n",
      predictability * 100, *true_frac, ci.lower, ci.upper,
      ci.upper - ci.lower, ci.theoretical_min, ci.theoretical_max);
  return true;
}

}  // namespace

int main() {
  std::printf("95%% confidence intervals for COUNT(b='b0') after "
              "completion:\n\n");
  bool ok = true;
  for (double p : {0.2, 0.5, 0.8, 1.0}) ok = RunOne(p) && ok;
  if (!ok) return 1;
  std::printf("\nHigher predictability -> more certain completions -> "
              "tighter intervals.\n");
  return 0;
}
