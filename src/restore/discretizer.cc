#include "restore/discretizer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace restore {

Result<ColumnDiscretizer> ColumnDiscretizer::Fit(const Column& column,
                                                 int max_bins) {
  ColumnDiscretizer disc;
  disc.type_ = column.type();

  if (column.type() == ColumnType::kCategorical) {
    disc.vocab_size_ = static_cast<int>(column.dictionary()->size());
    if (disc.vocab_size_ == 0) {
      return Status::InvalidArgument(
          StrFormat("categorical column '%s' has an empty dictionary",
                    column.name().c_str()));
    }
    return disc;
  }

  // Numeric: gather non-null values, sort, cut into equi-depth bins.
  std::vector<double> values;
  values.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    if (!column.IsNull(r)) values.push_back(column.GetNumeric(r));
  }
  if (values.empty()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has no non-null values to fit",
                  column.name().c_str()));
  }
  std::sort(values.begin(), values.end());

  // Distinct-aware equi-depth binning: bin edges are distinct values, so a
  // low-cardinality int column (e.g. years) gets one bin per value.
  const size_t n = values.size();
  const int bins = std::max(1, max_bins);
  std::vector<double> edges;  // upper edge per bin (inclusive)
  size_t start = 0;
  while (start < n && static_cast<int>(edges.size()) < bins) {
    const int remaining_bins = bins - static_cast<int>(edges.size());
    const size_t target = start + (n - start) / remaining_bins;
    size_t idx = std::min(target == start ? start : target - 1, n - 1);
    double edge = values[idx];
    // Extend to the end of the run of equal values so bins are well defined.
    while (idx + 1 < n && values[idx + 1] == edge) ++idx;
    // Last bin must absorb the maximum.
    if (static_cast<int>(edges.size()) == bins - 1) {
      idx = n - 1;
      edge = values[idx];
    }
    edges.push_back(edge);
    start = idx + 1;
  }
  if (edges.empty() || edges.back() < values.back()) {
    edges.push_back(values.back());
  }

  disc.upper_edges_ = edges;
  disc.vocab_size_ = static_cast<int>(edges.size());
  disc.bin_lo_.assign(edges.size(), 0.0);
  disc.bin_hi_.assign(edges.size(), 0.0);
  disc.bin_mean_.assign(edges.size(), 0.0);
  std::vector<size_t> counts(edges.size(), 0);
  size_t b = 0;
  for (size_t i = 0; i < n; ++i) {
    while (values[i] > edges[b]) ++b;
    if (counts[b] == 0) disc.bin_lo_[b] = values[i];
    disc.bin_hi_[b] = values[i];
    disc.bin_mean_[b] += values[i];
    ++counts[b];
  }
  for (size_t k = 0; k < edges.size(); ++k) {
    if (counts[k] > 0) {
      disc.bin_mean_[k] /= static_cast<double>(counts[k]);
    } else {
      // Empty bin (possible only via duplicate edges); use the edge value.
      disc.bin_lo_[k] = disc.bin_hi_[k] = disc.bin_mean_[k] = edges[k];
    }
  }
  return disc;
}

int32_t ColumnDiscretizer::EncodeCell(const Column& column, size_t row) const {
  if (column.IsNull(row)) return -1;
  if (type_ == ColumnType::kCategorical) {
    const int64_t code = column.GetCode(row);
    // Codes beyond the fitted vocabulary (possible if the dictionary grew
    // after fitting) are clamped to the last known code.
    return static_cast<int32_t>(
        std::min<int64_t>(code, vocab_size_ - 1));
  }
  return EncodeNumeric(column.GetNumeric(row));
}

int32_t ColumnDiscretizer::EncodeNumeric(double value) const {
  // Binary search for the first bin whose upper edge >= value.
  const auto it =
      std::lower_bound(upper_edges_.begin(), upper_edges_.end(), value);
  if (it == upper_edges_.end()) {
    return static_cast<int32_t>(upper_edges_.size()) - 1;
  }
  return static_cast<int32_t>(it - upper_edges_.begin());
}

void ColumnDiscretizer::DecodeInto(int32_t code, Column* out,
                                   Rng& rng) const {
  if (code < 0) {
    out->AppendNull();
    return;
  }
  if (type_ == ColumnType::kCategorical) {
    out->AppendCode(code);
    return;
  }
  const size_t b = static_cast<size_t>(code);
  const double lo = bin_lo_[b];
  const double hi = bin_hi_[b];
  const double v = lo == hi ? lo : rng.NextUniform(lo, hi);
  if (type_ == ColumnType::kInt64) {
    out->AppendInt64(static_cast<int64_t>(std::llround(v)));
  } else {
    out->AppendDouble(v);
  }
}

double ColumnDiscretizer::CodeMean(int32_t code) const {
  if (code < 0) return 0.0;
  if (type_ == ColumnType::kCategorical) return static_cast<double>(code);
  return bin_mean_[static_cast<size_t>(code)];
}

void ColumnDiscretizer::Save(BinaryWriter* w) const {
  w->U32(static_cast<uint32_t>(type_));
  w->I32(vocab_size_);
  w->VecF64(upper_edges_);
  w->VecF64(bin_lo_);
  w->VecF64(bin_hi_);
  w->VecF64(bin_mean_);
}

Result<ColumnDiscretizer> ColumnDiscretizer::Load(BinaryReader* r) {
  ColumnDiscretizer disc;
  const uint32_t type = r->U32();
  if (type > static_cast<uint32_t>(ColumnType::kCategorical)) {
    return Status::InvalidArgument("invalid column type in discretizer");
  }
  disc.type_ = static_cast<ColumnType>(type);
  disc.vocab_size_ = r->I32();
  disc.upper_edges_ = r->VecF64();
  disc.bin_lo_ = r->VecF64();
  disc.bin_hi_ = r->VecF64();
  disc.bin_mean_ = r->VecF64();
  RESTORE_RETURN_IF_ERROR(r->status());
  if (disc.vocab_size_ < 0) {
    return Status::InvalidArgument("negative vocab size in discretizer");
  }
  if (disc.type_ != ColumnType::kCategorical) {
    const size_t bins = static_cast<size_t>(disc.vocab_size_);
    if (disc.upper_edges_.size() != bins || disc.bin_lo_.size() != bins ||
        disc.bin_hi_.size() != bins || disc.bin_mean_.size() != bins) {
      return Status::InvalidArgument(
          "discretizer bin arrays do not match its vocab size");
    }
  }
  return disc;
}

}  // namespace restore
