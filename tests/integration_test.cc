// End-to-end integration tests: the restore::Db session API over the housing
// and movies datasets, including completed query execution, plus one legacy
// check that the deprecated CompletionEngine shim still answers identically.

#include <gtest/gtest.h>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/db.h"
#include "restore/engine.h"

namespace restore {
namespace {

EngineConfig FastEngineConfig() {
  EngineConfig config;
  config.model.epochs = 15;
  config.model.hidden_dim = 32;
  config.model.embed_dim = 6;
  config.model.max_bins = 16;
  config.max_candidates = 2;
  config.selection = SelectionStrategy::kBestTestLoss;
  return config;
}

TEST(DbHousingTest, CompletesApartmentTableAndReducesBias) {
  auto complete = BuildCompleteDatabase("housing", 201, 0.4);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.6, 202);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();

  auto completed = (*db)->CompleteTable("apartment");
  ASSERT_TRUE(completed.ok()) << completed.status();

  auto true_mean = ColumnMean(*complete->GetTable("apartment").value(),
                              "price");
  auto incomplete_mean =
      ColumnMean(*incomplete->GetTable("apartment").value(), "price");
  auto completed_mean = ColumnMean(*completed, "price");
  ASSERT_TRUE(true_mean.ok());
  ASSERT_TRUE(incomplete_mean.ok());
  ASSERT_TRUE(completed_mean.ok());
  // The biased removal lowered the observed mean; completion must push it
  // back towards the truth.
  ASSERT_LT(incomplete_mean.value(), true_mean.value());
  const double reduction = BiasReduction(
      true_mean.value(), incomplete_mean.value(), completed_mean.value());
  EXPECT_GT(reduction, 0.2) << "true=" << true_mean.value()
                            << " incomplete=" << incomplete_mean.value()
                            << " completed=" << completed_mean.value();
}

TEST(DbHousingTest, CompletedQueryBeatsIncompleteExecution) {
  auto complete = BuildCompleteDatabase("housing", 203, 0.4);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.4, 0.6, 204);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();

  const std::string sql =
      "SELECT SUM(price) FROM apartment WHERE room_type='entire_home';";
  auto truth = ExecuteSql(*complete, sql);
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  auto on_completed = session.Execute(sql);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(on_incomplete.ok());
  ASSERT_TRUE(on_completed.ok()) << on_completed.status();

  const double err_incomplete =
      AverageRelativeError(*truth, *on_incomplete);
  const double err_completed = AverageRelativeError(*truth, *on_completed);
  EXPECT_LT(err_completed, err_incomplete)
      << "incomplete err=" << err_incomplete
      << " completed err=" << err_completed;
}

TEST(DbHousingTest, PreparedJoinQueryWithIncompleteTableExecutes) {
  auto complete = BuildCompleteDatabase("housing", 205, 0.3);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H2");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 206);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();

  // Parse/plan once, execute with two different bindings.
  auto prepared = session.Prepare(
      "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
      "accommodates >= ? GROUP BY landlord_since;");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto result = prepared->Execute({Value::Int64(3)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->groups.empty());

  // Count must be >= the incomplete count overall (tuples were added).
  const std::string sql =
      "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
      "accommodates >= 3 GROUP BY landlord_since;";
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  ASSERT_TRUE(on_incomplete.ok());
  double completed_total = 0.0;
  double incomplete_total = 0.0;
  for (const auto& [k, v] : result->groups) {
    (void)k;
    completed_total += v[0];
  }
  for (const auto& [k, v] : on_incomplete->groups) {
    (void)k;
    incomplete_total += v[0];
  }
  EXPECT_GE(completed_total, incomplete_total);

  // A laxer binding must qualify at least as many rows.
  auto lax = prepared->Execute({Value::Int64(1)});
  ASSERT_TRUE(lax.ok()) << lax.status();
  double lax_total = 0.0;
  for (const auto& [k, v] : lax->groups) {
    (void)k;
    lax_total += v[0];
  }
  EXPECT_GE(lax_total, completed_total);
}

TEST(DbHousingTest, CacheReusesCompletedJoin) {
  auto complete = BuildCompleteDatabase("housing", 207, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 208);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  ASSERT_TRUE(
      session
          .Execute("SELECT AVG(price) FROM apartment WHERE accommodates >= 2;")
          .ok());
  const size_t misses_after_first = (*db)->cache().misses();
  ASSERT_TRUE(session
                  .Execute(
                      "SELECT COUNT(*) FROM apartment WHERE "
                      "room_type='entire_home';")
                  .ok());
  EXPECT_GT((*db)->cache().hits(), 0u);
  EXPECT_EQ((*db)->cache().misses(), misses_after_first);
}

TEST(DbMoviesTest, MultiIncompleteJoinQueryExecutes) {
  auto complete = BuildCompleteDatabase("movies", 209, 0.15);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("M1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 210);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  const std::string sql =
      "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN "
      "director WHERE gender='m';";
  auto truth = ExecuteSql(*complete, sql);
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  auto on_completed = session.Execute(sql);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(on_incomplete.ok());
  ASSERT_TRUE(on_completed.ok()) << on_completed.status();
  // Completion must recover a meaningful share of the missing join rows.
  const double t = truth->groups.at({})[0];
  const double i = on_incomplete->groups.at({})[0];
  const double c = on_completed->groups.at({})[0];
  EXPECT_GT(c, i) << "completed count should exceed the incomplete count";
  EXPECT_LT(std::abs(c - t) / t, std::abs(i - t) / t)
      << "truth=" << t << " incomplete=" << i << " completed=" << c;
}

TEST(DbTest, SelectedPathStartsCompleteAndEndsAtTarget) {
  auto complete = BuildCompleteDatabase("housing", 211, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H4");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 212);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  auto path = (*db)->SelectedPathFor("landlord");
  ASSERT_TRUE(path.ok()) << path.status();
  ASSERT_GE(path->size(), 2u);
  EXPECT_EQ(path->back(), "landlord");
  EXPECT_TRUE((*db)->annotation().IsComplete(path->front()));
}

TEST(DbTest, CompleteQueriesOnCompleteTablesBypassModels) {
  auto complete = BuildCompleteDatabase("housing", 213, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 214);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  // neighborhood is complete: the completed result equals direct execution,
  // and no model had to be trained for it.
  const std::string sql = "SELECT COUNT(*) FROM neighborhood;";
  auto direct = ExecuteSql(*incomplete, sql);
  auto completed = session.Execute(sql);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(completed.ok()) << completed.status();
  EXPECT_DOUBLE_EQ(direct->groups.at({})[0], completed->groups.at({})[0]);
  EXPECT_EQ((*db)->models_trained(), 0u);
}

TEST(LegacyEngineShimTest, MatchesDbFacadeAnswers) {
  auto complete = BuildCompleteDatabase("housing", 215, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 216);
  ASSERT_TRUE(incomplete.ok());

  const std::string sql =
      "SELECT COUNT(*) FROM apartment WHERE accommodates >= 2;";

  CompletionEngine engine(&*incomplete, AnnotationFor(*setup),
                          FastEngineConfig());
  ASSERT_TRUE(engine.TrainModels().ok());
  auto via_engine = engine.ExecuteCompletedSql(sql);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status();

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  auto via_db = (*db)->ExecuteCompletedSql(sql);
  ASSERT_TRUE(via_db.ok()) << via_db.status();

  // The shim delegates to an identically-configured Db: bit-identical.
  EXPECT_EQ(via_engine->groups, via_db->groups);
}

}  // namespace
}  // namespace restore
