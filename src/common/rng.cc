#include "common/rng.h"

#include <cmath>

namespace restore {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& part : state_) part = SplitMix64(s);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return NextUint64(n);
  // Inverse-CDF sampling over the finite Zipf pmf. For the small domains we
  // use (< 1e5 distinct values) the O(n) normalization is computed lazily per
  // call only when n is small; otherwise we approximate with rejection.
  double norm = 0.0;
  for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u < acc) return k - 1;
  }
  return n - 1;
}

}  // namespace restore
