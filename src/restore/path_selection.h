#ifndef RESTORE_RESTORE_PATH_SELECTION_H_
#define RESTORE_RESTORE_PATH_SELECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "restore/annotation.h"
#include "restore/path_model.h"
#include "storage/database.h"

namespace restore {

/// Strategies for picking a completion model / path (Section 5).
enum class SelectionStrategy {
  /// Take the first enumerated candidate path (mostly for tests).
  kFirst,
  /// Basic selection: the model whose held-out target loss is lowest —
  /// unpredictable attributes yield a high test loss (Fig 5b).
  kBestTestLoss,
  /// Advanced selection: derive an additional incomplete scenario from the
  /// incomplete dataset, reconstruct it with each candidate, and pick the
  /// one that reconstructs the known data best.
  kReconstruction,
  /// Advanced selection + a user-provided suspected bias: prefer candidates
  /// whose completion shifts the biased attribute in the indicated
  /// direction.
  kSuspectedBias,
};

/// Enumerates candidate completion paths for `target`: simple FK-graph paths
/// [C, ..., target] of length in [2, max_len] whose root table C is complete.
/// Intermediate tables may be incomplete (they are completed on the walk).
std::vector<std::vector<std::string>> EnumerateCompletionPaths(
    const Database& db, const SchemaAnnotation& annotation,
    const std::string& target, size_t max_len = 5);

/// Score assigned to one candidate by the selection procedure
/// (lower is better).
struct PathScore {
  std::vector<std::string> path;
  double score = 0.0;
};

/// Selects the best path among `candidates` (already-trained models) for
/// completing `target`, following `strategy`. `models[i]` must be the model
/// trained for `candidates[i]`.
///
/// For kReconstruction / kSuspectedBias, a derived scenario is built by
/// removing `holdout_fraction` of the target's tuples from the incomplete
/// database and measuring how well each candidate restores the table mean
/// (and, with a suspected bias, whether the correction direction matches).
Result<size_t> SelectPath(
    const Database& db, const SchemaAnnotation& annotation,
    const std::string& target,
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<const PathModel*>& models, SelectionStrategy strategy,
    const PathModelConfig& probe_config, double holdout_fraction = 0.3,
    uint64_t seed = 99);

}  // namespace restore

#endif  // RESTORE_RESTORE_PATH_SELECTION_H_
