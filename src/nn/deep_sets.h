#ifndef RESTORE_NN_DEEP_SETS_H_
#define RESTORE_NN_DEEP_SETS_H_

#include <vector>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/inference_scratch.h"
#include "nn/layers.h"
#include "nn/matrix.h"

namespace restore {

/// Variable-size child-tuple sets attached to a batch of evidence rows, in
/// CSR layout: evidence row r owns child rows
/// codes[offsets[r] .. offsets[r+1]) of one child table.
struct ChildBatch {
  IntMatrix codes;              // [total_children x n_child_attrs]
  std::vector<size_t> offsets;  // size batch+1, offsets[0] == 0
};

/// Deep-sets encoder for the fan-out / self evidence of SSAR models
/// (Zaheer et al. [42], as used in Section 3.3 of the paper).
///
/// Per child table t: each child tuple is embedded (shared per-table
/// weights), passed through a 2-layer MLP phi_t, and sum-pooled per evidence
/// row. The pooled vectors of all child tables are concatenated and passed
/// through a feed-forward layer rho to produce the context vector that
/// conditions the MADE (always-visible input).
class DeepSetsEncoder {
 public:
  struct TableSpec {
    std::vector<int> vocab_sizes;  // child-table attribute vocabularies
  };

  DeepSetsEncoder() = default;
  DeepSetsEncoder(const std::vector<TableSpec>& tables, size_t embed_dim,
                  size_t phi_dim, size_t context_dim, Rng& rng);

  size_t num_tables() const { return phi1_.size(); }
  size_t context_dim() const { return context_dim_; }

  /// Encodes one ChildBatch per child table (order must match construction)
  /// into a [batch x context_dim] context matrix. TRAINING entry point:
  /// caches what Backward needs in member state (single-threaded per model).
  void Forward(const std::vector<ChildBatch>& children, Matrix* context);

  /// Reentrant inference encode: all per-call buffers live in `scratch`,
  /// the encoder is read-only, so concurrent threads can encode through one
  /// trained encoder — each with its own scratch. Bit-identical to the
  /// training Forward.
  void Forward(const std::vector<ChildBatch>& children, Matrix* context,
               DeepSetsScratch* scratch) const;

  /// Backpropagates the context gradient into all encoder parameters.
  void Backward(const Matrix& dcontext);

  void CollectParams(std::vector<Param*>* params);

 private:
  size_t embed_dim_ = 0;
  size_t phi_dim_ = 0;
  size_t context_dim_ = 0;

  std::vector<EmbeddingSet> embeds_;  // one per child table
  std::vector<Dense> phi1_;           // per-table child MLP layer 1
  std::vector<Dense> phi2_;           // per-table child MLP layer 2
  Dense rho_;                         // pooled concat -> context
  // Caches.
  std::vector<ChildBatch> children_cache_;
  std::vector<Matrix> phi1_out_;   // relu(phi1(embed)) per table
  std::vector<Matrix> phi2_out_;   // relu(phi2(...)) per table
  Matrix pooled_;                  // [batch x num_tables*phi_dim]
  Matrix rho_out_;                 // relu(rho(pooled))
};

}  // namespace restore

#endif  // RESTORE_NN_DEEP_SETS_H_
