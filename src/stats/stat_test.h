#ifndef RESTORE_STATS_STAT_TEST_H_
#define RESTORE_STATS_STAT_TEST_H_

// Two-sample statistical tests over column distributions.
//
// Three complementary measures, all deterministic and allocation-light:
//
//  * Two-sample Kolmogorov–Smirnov — the max ECDF gap, exact over raw
//    samples (KsTwoSample) or evaluated at the shared bin edges of two
//    aligned ColumnSummaries (KsFromSummaries; categorical summaries are
//    treated as ordinal over the reference label order, which is the "KS
//    distance on the biased column" of the drift roadmap item). The p-value
//    uses the standard asymptotic Kolmogorov distribution.
//  * Pearson χ² homogeneity test over two count vectors, with
//    small-expected-count buckets merged into a rest bucket first (the
//    classical validity rule) — the categorical-column test.
//  * Population Stability Index — a cheap threshold monitor (no p-value;
//    industry rule of thumb: < 0.1 stable, > 0.25 shifted).
//
// Consumers: the Db's drift-triggered refresh scores the live snapshot
// against each model's training-time reference summaries (ScoreDrift); the
// distribution-equivalence harness (equivalence.h) runs the same tests on
// sampled completions of two Db configurations.

#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "storage/database.h"

namespace restore {

struct KsResult {
  /// sup_x |F_1(x) - F_2(x)|, in [0, 1].
  double statistic = 0.0;
  /// Asymptotic two-sided p-value (1 when either sample is empty).
  double p_value = 1.0;
  uint64_t n1 = 0;
  uint64_t n2 = 0;
};

/// Exact two-sample KS over raw samples (the vectors are sorted in place;
/// pass copies if you need the originals). NaNs must be filtered out by the
/// caller (column nulls never reach here).
KsResult KsTwoSample(std::vector<double> a, std::vector<double> b);

/// KS between two summaries on the same grid (build `cur` with
/// SummarizeAgainst(ref, ...)): the max CDF gap across the shared buckets.
/// Exact for the binned distributions; a lower bound on the raw-sample
/// statistic. Categorical pairs compare CDFs over the reference label order.
KsResult KsFromSummaries(const ColumnSummary& ref, const ColumnSummary& cur);

struct Chi2Result {
  double statistic = 0.0;
  /// Degrees of freedom after bucket merging (0 when fewer than two viable
  /// buckets remain — statistic 0, p-value 1: no evidence either way).
  double df = 0.0;
  double p_value = 1.0;
  /// Buckets folded into the rest bucket by the min-expected-count rule.
  size_t merged_buckets = 0;
};

/// Pearson χ² two-sample homogeneity test over parallel count vectors
/// (bucket i of `a` and `b` must mean the same thing). Buckets whose
/// pooled-expected count falls below `min_expected` are merged into one rest
/// bucket before the statistic is computed.
Chi2Result ChiSquaredTwoSample(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double min_expected = 5.0);

/// χ² over two aligned summaries' buckets.
Chi2Result Chi2FromSummaries(const ColumnSummary& ref,
                             const ColumnSummary& cur,
                             double min_expected = 5.0);

/// Population Stability Index between two parallel count vectors:
/// sum_i (p_i - q_i) * ln(p_i / q_i) over proportions floored at a small
/// epsilon (so empty buckets contribute finitely). Symmetric, >= 0,
/// 0 iff the proportions match exactly.
double Psi(const std::vector<double>& ref, const std::vector<double>& cur);

/// PSI over two aligned summaries' buckets.
double PsiFromSummaries(const ColumnSummary& ref, const ColumnSummary& cur);

/// Two-sided asymptotic p-value of a two-sample KS statistic `d` at sample
/// sizes n1, n2 (Kolmogorov distribution tail with the standard
/// finite-sample correction).
double KolmogorovPValue(double d, double n1, double n2);

/// Upper-tail p-value of a χ² statistic at `df` degrees of freedom
/// (regularized incomplete gamma Q(df/2, x/2)).
double ChiSquaredPValue(double statistic, double df);

/// Aggregate drift of a model's training-time reference summaries against
/// the current snapshot: per column, the live data is re-binned on the
/// reference grid and scored; the worst column wins.
struct DriftScore {
  /// False when there are no reference summaries to score against (model
  /// restored from a pre-v4 manifest) — ks/psi read 0 and a drift-triggered
  /// refresh never fires.
  bool available = false;
  /// Max per-column KS statistic (numeric grids and ordinal categorical).
  double ks = 0.0;
  /// Max per-column PSI.
  double psi = 0.0;
  /// "table.column" attaining the max KS statistic (ties: first wins).
  std::string worst_column;
};

/// Scores `refs` against `current`. Columns whose table or column vanished
/// from the snapshot are skipped; an empty `refs` yields available == false.
DriftScore ScoreDrift(const std::vector<ColumnSummary>& refs,
                      const Database& current);

}  // namespace restore

#endif  // RESTORE_STATS_STAT_TEST_H_
