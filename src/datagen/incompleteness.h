#ifndef RESTORE_DATAGEN_INCOMPLETENESS_H_
#define RESTORE_DATAGEN_INCOMPLETENESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

namespace restore {

/// Parameters of a biased removal (Section 7.2/7.3): tuples of `table` are
/// removed such that the removal probability correlates with `column`.
///
/// * `keep_rate`: expected fraction of tuples kept.
/// * `removal_correlation` in [0, 1]: strength of the bias. 0 removes
///   uniformly at random; 1 concentrates removals entirely on the biased
///   side (high attribute values / the chosen categorical value).
/// * For categorical columns, removal correlates with `categorical_value`
///   (empty = the most frequent value is chosen automatically).
struct BiasedRemovalConfig {
  std::string table;
  std::string column;
  double keep_rate = 0.5;
  double removal_correlation = 0.5;
  std::string categorical_value;
  uint64_t seed = 7;
};

/// Removes tuples of `config.table` from a copy of `db` with the configured
/// bias. Tuple-factor columns on OTHER tables keep their complete-world
/// values (they describe the true database).
Result<Database> ApplyBiasedRemoval(const Database& db,
                                    const BiasedRemovalConfig& config);

/// Uniformly removes tuples of `table`, keeping `keep_rate` of them
/// (used for the extra removals of setups M4/M5).
Result<Database> ApplyUniformRemoval(const Database& db,
                                     const std::string& table,
                                     double keep_rate, uint64_t seed);

/// Nulls out a share of the observed tuple factors: each non-null cell of
/// every "__tf_*" column in the database is kept with `tf_keep_rate`.
Status ThinTupleFactors(Database* db, double tf_keep_rate, uint64_t seed);

/// Cascade removal for m:n link tables: removes every row of each listed
/// table whose foreign keys no longer all resolve (the paper's "remove all
/// tuples in the m:n relationship tables which do not have a matching tuple
/// after the removal").
Status CascadeRemoveLinkRows(Database* db,
                             const std::vector<std::string>& link_tables);

}  // namespace restore

#endif  // RESTORE_DATAGEN_INCOMPLETENESS_H_
