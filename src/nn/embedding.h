#ifndef RESTORE_NN_EMBEDDING_H_
#define RESTORE_NN_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/matrix.h"

namespace restore {

/// Per-attribute learned embeddings: attribute i with vocabulary size V_i is
/// represented by a [V_i x embed_dim] table; a batch of code rows
/// [batch x n_attrs] is embedded to [batch x (n_attrs * embed_dim)]
/// (concatenation in attribute order).
class EmbeddingSet {
 public:
  EmbeddingSet() = default;
  EmbeddingSet(const std::vector<int>& vocab_sizes, size_t embed_dim,
               Rng& rng);

  size_t num_attrs() const { return tables_.size(); }
  size_t embed_dim() const { return embed_dim_; }
  size_t output_dim() const { return tables_.size() * embed_dim_; }
  int vocab_size(size_t attr) const {
    return static_cast<int>(tables_[attr].value.rows());
  }
  /// Read-only view of one attribute's [V_i x embed_dim] table; used by the
  /// incremental-sampling delta path to diff two codes' embeddings.
  const Matrix& table_value(size_t attr) const { return tables_[attr].value; }

  /// Embeds `codes` ([batch x n_attrs]) into `out`
  /// ([batch x n_attrs*embed_dim]). Codes must be in range per attribute.
  /// `cache_codes` = false skips the snapshot Backward needs (inference).
  void Forward(const IntMatrix& codes, Matrix* out, bool cache_codes = true);

  /// Reentrant inference gather: touches no member state, so any number of
  /// threads may embed batches through one table set concurrently.
  void ForwardInference(const IntMatrix& codes, Matrix* out) const;

  /// Re-gathers ONLY attribute `attr`'s embedding block into an already
  /// embedded batch. `out` must hold the embedding of `codes` with at most
  /// column `attr` changed since it was produced — then the result is
  /// byte-identical to a full ForwardInference (pure copy, no arithmetic).
  /// The sampling loop uses this between consecutive attributes, where
  /// exactly one column changes.
  void ForwardInferenceColumn(const IntMatrix& codes, size_t attr,
                              Matrix* out) const;

  /// Scatter-adds `dout` into the embedding-table gradients (uses the codes
  /// from the last Forward call).
  void Backward(const Matrix& dout);

  void CollectParams(std::vector<Param*>* params) {
    for (auto& t : tables_) params->push_back(&t);
  }

 private:
  size_t embed_dim_ = 0;
  std::vector<Param> tables_;  // one [V_i x embed_dim] per attribute
  IntMatrix codes_cache_;
};

}  // namespace restore

#endif  // RESTORE_NN_EMBEDDING_H_
