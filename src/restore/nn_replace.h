#ifndef RESTORE_RESTORE_NN_REPLACE_H_
#define RESTORE_RESTORE_NN_REPLACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace restore {

/// Euclidean replacement (Figure 3 / Algorithm 1 line 18): maps synthesized
/// tuples of a table onto the most similar EXISTING tuples, so that joins
/// with complete tables never surface invented rows and the synthesized
/// tuples obtain valid keys.
///
/// Both the real table and the synthesized columns are embedded into a
/// standardized numeric space (numeric columns are z-scored, categorical
/// columns one-hot-weighted by code match via their code value — adequate
/// because both sides share dictionaries). Search uses an approximate
/// k-d-tree lookup bounded by `max_leaves`.
class EuclideanReplacer {
 public:
  /// Builds a replacer over the attribute columns `attr_columns` of `table`
  /// (names must exist in `table`).
  static Result<EuclideanReplacer> Build(
      const Table& table, const std::vector<std::string>& attr_columns,
      size_t max_leaves = 8);

  /// For every row of the synthesized columns (one Column per attribute, in
  /// the same order as `attr_columns`), returns the index of the most
  /// similar row of the real table.
  Result<std::vector<size_t>> FindReplacements(
      const std::vector<Column>& synthesized) const;

 private:
  EuclideanReplacer() = default;

  std::vector<std::string> attr_columns_;
  std::vector<double> means_;
  std::vector<double> inv_stddevs_;
  std::vector<float> points_;  // standardized real tuples
  size_t num_points_ = 0;
  size_t dim_ = 0;
  size_t max_leaves_ = 8;
  std::shared_ptr<class KdTree> tree_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_NN_REPLACE_H_
