// Property tests for the SQL layer: every workload query round-trips
// through parse -> ToSql -> parse, and parser behavior is stable across a
// grid of operator / literal combinations.

#include <gtest/gtest.h>

#include "datagen/workload.h"
#include "exec/sql_parser.h"

namespace restore {
namespace {

class WorkloadRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(WorkloadRoundTrip, ParseToSqlParseIsStable) {
  const auto& [name, sql] = GetParam();
  auto q1 = ParseSql(sql);
  ASSERT_TRUE(q1.ok()) << name << ": " << q1.status();
  const std::string rendered = q1->ToSql();
  auto q2 = ParseSql(rendered);
  ASSERT_TRUE(q2.ok()) << name << ": " << q2.status() << " for " << rendered;
  EXPECT_EQ(q2->ToSql(), rendered) << name;
  EXPECT_EQ(q2->tables, q1->tables);
  EXPECT_EQ(q2->group_by, q1->group_by);
  EXPECT_EQ(q2->predicates.size(), q1->predicates.size());
  EXPECT_EQ(q2->aggregates.size(), q1->aggregates.size());
}

std::vector<std::tuple<std::string, std::string>> AllWorkloadQueries() {
  std::vector<std::tuple<std::string, std::string>> out;
  for (const auto& wq : HousingWorkload()) {
    out.emplace_back("housing_" + wq.name, wq.sql);
  }
  for (const auto& wq : MovieWorkload()) {
    out.emplace_back("movies_" + wq.name, wq.sql);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, WorkloadRoundTrip, ::testing::ValuesIn(AllWorkloadQueries()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) { return std::get<0>(info.param); });

struct OpCase {
  const char* op;
  CompareOp expected;
};

class OperatorGrid : public ::testing::TestWithParam<OpCase> {};

TEST_P(OperatorGrid, ComparisonOperatorsParse) {
  const OpCase& c = GetParam();
  auto q = ParseSql(std::string("SELECT COUNT(*) FROM t WHERE x ") + c.op +
                    " 5;");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->predicates[0].op, c.expected);
}

INSTANTIATE_TEST_SUITE_P(Ops, OperatorGrid,
                         ::testing::Values(OpCase{"=", CompareOp::kEq},
                                           OpCase{"!=", CompareOp::kNe},
                                           OpCase{"<>", CompareOp::kNe},
                                           OpCase{"<", CompareOp::kLt},
                                           OpCase{"<=", CompareOp::kLe},
                                           OpCase{">", CompareOp::kGt},
                                           OpCase{">=", CompareOp::kGe}));

class AggregateGrid
    : public ::testing::TestWithParam<std::tuple<const char*, AggregateFunc>> {
};

TEST_P(AggregateGrid, AggregateFunctionsParse) {
  const auto& [name, func] = GetParam();
  auto q =
      ParseSql(std::string("SELECT ") + name + "(x) FROM t GROUP BY g;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregates[0].func, func);
  EXPECT_EQ(q->aggregates[0].column, "x");
}

INSTANTIATE_TEST_SUITE_P(
    Funcs, AggregateGrid,
    ::testing::Values(std::make_tuple("COUNT", AggregateFunc::kCount),
                      std::make_tuple("count", AggregateFunc::kCount),
                      std::make_tuple("SUM", AggregateFunc::kSum),
                      std::make_tuple("Avg", AggregateFunc::kAvg)));

TEST(ParserEdgeCases, ManyJoinsAndPredicates) {
  std::string sql = "SELECT COUNT(*) FROM t0";
  for (int i = 1; i < 8; ++i) {
    sql += " NATURAL JOIN t" + std::to_string(i);
  }
  sql += " WHERE a = 1";
  for (int i = 0; i < 10; ++i) {
    sql += " AND c" + std::to_string(i) + " >= " + std::to_string(i);
  }
  sql += " GROUP BY g1, g2, g3;";
  auto q = ParseSql(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->tables.size(), 8u);
  EXPECT_EQ(q->predicates.size(), 11u);
  EXPECT_EQ(q->group_by.size(), 3u);
}

TEST(ParserEdgeCases, WhitespaceAndNewlinesTolerated) {
  auto q = ParseSql("  SELECT\n\tCOUNT( * )\nFROM\tt\nWHERE x\n=\n1 ;  ");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->tables[0], "t");
}

TEST(ParserEdgeCases, EmptyStringLiteralAllowed) {
  auto q = ParseSql("SELECT COUNT(*) FROM t WHERE x = '';");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates[0].literal.string_value(), "");
}

}  // namespace
}  // namespace restore
