#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace restore {

void KaimingInit(Matrix* w, size_t fan_in, Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  for (size_t i = 0; i < w->size(); ++i) {
    w->data()[i] = static_cast<float>(rng.NextUniform(-bound, bound));
  }
}

Dense::Dense(size_t in_dim, size_t out_dim, Rng& rng) {
  w_.Init(in_dim, out_dim);
  b_.Init(1, out_dim);
  KaimingInit(&w_.value, in_dim, rng);
}

void Dense::Forward(const Matrix& x, Matrix* y, bool cache_input) {
  if (cache_input) x_cache_ = x;
  MatMul(x, w_.value, y);
  AddBiasRows(b_.value, y);
}

void Dense::ForwardInference(const Matrix& x, Matrix* y) const {
  MatMulFused(x, w_.value, &b_.value, /*relu=*/false, /*residual=*/nullptr,
              y);
}

void Dense::ForwardInferenceSlice(const Matrix& x, size_t col_begin,
                                  size_t col_end, Matrix* y) const {
  MatMulColsSliceBias(x, w_.value, b_.value, col_begin, col_end, y);
}

void Dense::Backward(const Matrix& dy, Matrix* dx) {
  MatMulTransAAccum(x_cache_, dy, &w_.grad);
  AccumBiasGrad(dy, &b_.grad);
  MatMulTransB(dy, w_.value, dx, &pack_scratch_);
}

void Dense::BackwardNoInputGrad(const Matrix& dy) {
  MatMulTransAAccum(x_cache_, dy, &w_.grad);
  AccumBiasGrad(dy, &b_.grad);
}

MaskedDense::MaskedDense(Matrix mask, Rng& rng) : mask_(std::move(mask)) {
  w_.Init(mask_.rows(), mask_.cols());
  b_.Init(1, mask_.cols());
  KaimingInit(&w_.value, mask_.rows(), rng);
}

void MaskedDense::RefreshMaskedWeights() {
  masked_w_.Resize(w_.value.rows(), w_.value.cols());
  const float* __restrict__ w = w_.value.data();
  const float* __restrict__ m = mask_.data();
  float* __restrict__ out = masked_w_.data();
  for (size_t i = 0; i < w_.value.size(); ++i) out[i] = w[i] * m[i];
}

void MaskedDense::Forward(const Matrix& x, Matrix* y, bool cache_input) {
  if (cache_input) x_cache_ = x;
  RefreshMaskedWeights();
  MatMul(x, masked_w_, y);
  AddBiasRows(b_.value, y);
}

void MaskedDense::ForwardInference(const Matrix& x, Matrix* y) const {
  assert(masked_w_.rows() == mask_.rows() && masked_w_.cols() == mask_.cols());
  MatMulFused(x, masked_w_, &b_.value, /*relu=*/false, /*residual=*/nullptr,
              y);
}

void MaskedDense::ForwardInferenceFused(const Matrix& x, bool relu,
                                        const Matrix* residual,
                                        Matrix* y) const {
  assert(masked_w_.rows() == mask_.rows() && masked_w_.cols() == mask_.cols());
  MatMulFused(x, masked_w_, &b_.value, relu, residual, y);
}

void MaskedDense::ForwardInferenceSlice(const Matrix& x, size_t col_begin,
                                        size_t col_end, Matrix* y) const {
  assert(masked_w_.rows() == mask_.rows() && masked_w_.cols() == mask_.cols());
  MatMulColsSliceBias(x, masked_w_, b_.value, col_begin, col_end, y);
}

void MaskedDense::Backward(const Matrix& dy, Matrix* dx) {
  BackwardNoInputGrad(dy);
  MatMulTransB(dy, masked_w_, dx, &pack_scratch_);
}

void MaskedDense::BackwardNoInputGrad(const Matrix& dy) {
  // dW = (x^T dy) * M  -- accumulate masked.
  dw_scratch_.Resize(w_.value.rows(), w_.value.cols());
  dw_scratch_.Fill(0.0f);
  MatMulTransAAccum(x_cache_, dy, &dw_scratch_);
  const float* __restrict__ m = mask_.data();
  float* __restrict__ g = w_.grad.data();
  const float* __restrict__ d = dw_scratch_.data();
  for (size_t i = 0; i < dw_scratch_.size(); ++i) g[i] += d[i] * m[i];
  AccumBiasGrad(dy, &b_.grad);
}

}  // namespace restore
