// Unit tests for the statistical testing subsystem: two-sample KS against
// analytically known distributions, χ² bucket-merge edge cases, PSI
// monotonicity, ColumnSummary round-trips and grid alignment, and
// bit-identical drift scores independent of threading.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "stats/histogram.h"
#include "stats/stat_test.h"
#include "storage/database.h"
#include "storage/table.h"

namespace restore {
namespace {

std::vector<double> Ramp(size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n);
  }
  return v;
}

// ---- Kolmogorov–Smirnov -----------------------------------------------------

TEST(StatsTest, KsIdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> x = Ramp(400, 0.0, 1.0);
  const KsResult r = KsTwoSample(x, x);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_EQ(r.n1, 400u);
  EXPECT_EQ(r.n2, 400u);
}

TEST(StatsTest, KsDisjointSupportsHaveStatisticOne) {
  const KsResult r = KsTwoSample(Ramp(200, 0.0, 1.0), Ramp(200, 5.0, 6.0));
  EXPECT_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(StatsTest, KsHalfShiftedUniformIsHalf) {
  // U(0,1) vs U(0.5,1.5): the true sup-gap of the CDFs is exactly 0.5, and
  // dense deterministic grids hit it to within one grid step.
  const KsResult r =
      KsTwoSample(Ramp(1000, 0.0, 1.0), Ramp(1000, 0.5, 1.5));
  EXPECT_NEAR(r.statistic, 0.5, 2e-3);
  EXPECT_LT(r.p_value, 1e-9);
}

TEST(StatsTest, KsTiesAreHandledExactly) {
  // Heavy ties: {0,0,0,1} vs {0,1,1,1}. ECDFs at 0 are 0.75 and 0.25, so
  // D = 0.5 exactly.
  const KsResult r = KsTwoSample({0, 0, 0, 1}, {0, 1, 1, 1});
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
}

TEST(StatsTest, KsEmptySampleIsNoEvidence) {
  const KsResult r = KsTwoSample({}, Ramp(10, 0.0, 1.0));
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(StatsTest, KolmogorovPValueMatchesKnownValues) {
  // Q_KS at lambda = 1.0 is 0.26999967...: with n1 = n2 very large the
  // finite-sample correction vanishes and d = lambda * sqrt(2/n).
  const double n = 1e10;
  const double d = 1.0 / std::sqrt(n / 2.0);
  EXPECT_NEAR(KolmogorovPValue(d, n, n), 0.2699996716773, 1e-5);
  // Monotone: a bigger gap is always less likely under H0.
  EXPECT_GT(KolmogorovPValue(0.05, 200, 200),
            KolmogorovPValue(0.25, 200, 200));
  EXPECT_EQ(KolmogorovPValue(0.0, 100, 100), 1.0);
}

// ---- Pearson chi-squared ----------------------------------------------------

TEST(StatsTest, Chi2IdenticalCountsAreNoEvidence) {
  const std::vector<double> c = {30, 40, 30};
  const Chi2Result r = ChiSquaredTwoSample(c, c);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.df, 2.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(StatsTest, Chi2DetectsGrossImbalance) {
  const Chi2Result r =
      ChiSquaredTwoSample({100, 10, 10}, {10, 100, 10});
  EXPECT_GT(r.statistic, 50.0);
  EXPECT_LT(r.p_value, 1e-9);
}

TEST(StatsTest, Chi2SingleBucketHasNoDegreesOfFreedom) {
  // One category total: nothing to compare, not a division by zero.
  const Chi2Result r = ChiSquaredTwoSample({50}, {70});
  EXPECT_EQ(r.df, 0.0);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(StatsTest, Chi2EmptyCountsAreNoEvidence) {
  EXPECT_EQ(ChiSquaredTwoSample({}, {}).p_value, 1.0);
  // One side entirely empty: no evidence either (can't test homogeneity
  // against nothing).
  EXPECT_EQ(ChiSquaredTwoSample({10, 20}, {0, 0}).p_value, 1.0);
}

TEST(StatsTest, Chi2MergesSmallExpectedBuckets) {
  // One dominant bucket plus a dust tail: the tail buckets individually
  // fail the min-expected-count rule and must be pooled, not dropped.
  const std::vector<double> a = {500, 1, 1, 1, 1, 1};
  const std::vector<double> b = {500, 1, 1, 1, 1, 1};
  const Chi2Result r = ChiSquaredTwoSample(a, b);
  EXPECT_GT(r.merged_buckets, 0u);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);  // identical -> still no evidence
  // df reflects the merged table, not the raw bucket count.
  EXPECT_LT(r.df, 5.0);
}

TEST(StatsTest, Chi2AllMassInOneBucketWithDustRest) {
  // All mass in one bucket on both sides, rest too small to ever clear the
  // bar: the rest folds into the viable bucket and df collapses to zero.
  const Chi2Result r = ChiSquaredTwoSample({1000, 1, 0}, {1000, 0, 1});
  EXPECT_EQ(r.df, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(StatsTest, ChiSquaredPValueMatchesKnownValues) {
  // chi2 CDF fixed points: P(X <= x) at df=2 is 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquaredPValue(2.0, 2.0), std::exp(-1.0), 1e-10);
  EXPECT_NEAR(ChiSquaredPValue(3.841458820694124, 1.0), 0.05, 1e-9);
  EXPECT_EQ(ChiSquaredPValue(0.0, 5.0), 1.0);
}

// ---- PSI --------------------------------------------------------------------

TEST(StatsTest, PsiZeroOnMatchingProportionsAndMonotoneUnderShift) {
  const std::vector<double> ref = {25, 25, 25, 25};
  EXPECT_EQ(Psi(ref, ref), 0.0);
  // Scaling both sides leaves proportions untouched.
  EXPECT_NEAR(Psi(ref, {50, 50, 50, 50}), 0.0, 1e-12);

  // Push mass progressively from the first bucket into the last: PSI must
  // grow strictly with the size of the shift.
  double prev = 0.0;
  for (double shift = 5.0; shift <= 20.0; shift += 5.0) {
    const double psi =
        Psi(ref, {25 - shift, 25, 25, 25 + shift});
    EXPECT_GT(psi, prev);
    prev = psi;
  }
  EXPECT_GT(prev, 0.1);  // a 20/25 swing is well past "stable"
}

TEST(StatsTest, PsiFiniteWhenBucketsEmptyOut) {
  // An emptied bucket would be log(0) without the proportion floor.
  const double psi = Psi({50, 50}, {100, 0});
  EXPECT_TRUE(std::isfinite(psi));
  EXPECT_GT(psi, 1.0);
}

// ---- ColumnSummary ----------------------------------------------------------

Column NumericColumn(const std::string& name, const std::vector<double>& v) {
  Column col(name, ColumnType::kDouble);
  for (double x : v) col.AppendDouble(x);
  return col;
}

Column CategoricalColumn(const std::string& name,
                         const std::vector<std::string>& v) {
  Column col(name, ColumnType::kCategorical);
  col.set_dictionary(std::make_shared<Dictionary>());
  for (const auto& s : v) col.AppendCategorical(s);
  return col;
}

TEST(StatsTest, NumericSummaryRoundTripsThroughSerialization) {
  const ColumnSummary s =
      SummarizeColumn("t", NumericColumn("x", Ramp(500, -3.0, 7.0)), 32);
  EXPECT_EQ(s.kind, ColumnSummary::Kind::kNumeric);
  EXPECT_EQ(s.counts.size(), 32u);
  EXPECT_EQ(s.total, 500u);

  BinaryWriter w;
  s.Save(&w);
  BinaryReader r(w.buffer());
  auto loaded = ColumnSummary::Load(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->table, s.table);
  EXPECT_EQ(loaded->column, s.column);
  EXPECT_EQ(loaded->lo, s.lo);
  EXPECT_EQ(loaded->hi, s.hi);
  EXPECT_EQ(loaded->counts, s.counts);
  EXPECT_EQ(loaded->total, s.total);
}

TEST(StatsTest, CategoricalSummaryRoundTripsThroughSerialization) {
  const ColumnSummary s = SummarizeColumn(
      "t", CategoricalColumn("c", {"a", "b", "a", "c", "a", "b"}));
  EXPECT_EQ(s.kind, ColumnSummary::Kind::kCategorical);
  ASSERT_EQ(s.labels.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);  // labels + "other"
  EXPECT_EQ(s.counts[0], 3.0);     // "a"
  EXPECT_EQ(s.counts[3], 0.0);     // nothing unseen yet

  BinaryWriter w;
  s.Save(&w);
  BinaryReader r(w.buffer());
  auto loaded = ColumnSummary::Load(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->labels, s.labels);
  EXPECT_EQ(loaded->counts, s.counts);
}

TEST(StatsTest, SummarizeAgainstClampsOutOfRangeIntoEdgeBins) {
  const ColumnSummary ref =
      SummarizeColumn("t", NumericColumn("x", Ramp(100, 0.0, 1.0)), 10);
  // New data far outside the reference range: everything lands in the edge
  // bins instead of vanishing, so drift is still visible.
  const ColumnSummary cur =
      SummarizeAgainst(ref, NumericColumn("x", {-50.0, -50.0, 50.0}));
  ASSERT_EQ(cur.counts.size(), ref.counts.size());
  EXPECT_EQ(cur.counts.front(), 2.0);
  EXPECT_EQ(cur.counts.back(), 1.0);
  EXPECT_EQ(cur.total, 3u);
}

TEST(StatsTest, SummarizeAgainstRoutesUnseenLabelsToOther) {
  const ColumnSummary ref =
      SummarizeColumn("t", CategoricalColumn("c", {"a", "b", "a"}));
  // A column with its OWN dictionary (different codes) and a novel label:
  // alignment is by string, novelty goes to the trailing bucket.
  const ColumnSummary cur = SummarizeAgainst(
      ref, CategoricalColumn("c", {"zzz", "b", "a", "zzz"}));
  ASSERT_EQ(cur.counts.size(), ref.labels.size() + 1);
  EXPECT_EQ(cur.counts[0], 1.0);     // "a"
  EXPECT_EQ(cur.counts[1], 1.0);     // "b"
  EXPECT_EQ(cur.counts.back(), 2.0); // "zzz"
}

TEST(StatsTest, SummaryPairFeedsKsAndDetectsShift) {
  const ColumnSummary ref =
      SummarizeColumn("t", NumericColumn("x", Ramp(2000, 0.0, 1.0)));
  const ColumnSummary same =
      SummarizeAgainst(ref, NumericColumn("x", Ramp(2000, 0.0, 1.0)));
  const ColumnSummary shifted =
      SummarizeAgainst(ref, NumericColumn("x", Ramp(2000, 0.5, 1.5)));
  EXPECT_LT(KsFromSummaries(ref, same).statistic, 1e-9);
  EXPECT_NEAR(KsFromSummaries(ref, shifted).statistic, 0.5, 0.02);
  EXPECT_LT(PsiFromSummaries(ref, same), 1e-9);
  EXPECT_GT(PsiFromSummaries(ref, shifted), 0.25);
}

// ---- ScoreDrift + thread determinism ----------------------------------------

Database DriftDb(double numeric_shift, const std::string& extra_category) {
  Database db;
  Table t("t", {{"x", ColumnType::kDouble}, {"c", ColumnType::kCategorical}});
  for (int i = 0; i < 300; ++i) {
    const double x =
        numeric_shift + static_cast<double>(i % 100) / 100.0;
    const std::string c =
        !extra_category.empty() && i % 3 == 0 ? extra_category
                                              : (i % 2 ? "u" : "v");
    EXPECT_TRUE(
        t.AppendRow({Value::Double(x), Value::Categorical(c)}).ok());
  }
  EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  return db;
}

TEST(StatsTest, ScoreDriftQuietOnSameDistributionLoudOnShift) {
  const Database base = DriftDb(0.0, "");
  const std::vector<ColumnSummary> refs = SummarizeTables(base, {"t"});
  ASSERT_EQ(refs.size(), 2u);

  const DriftScore same = ScoreDrift(refs, DriftDb(0.0, ""));
  EXPECT_TRUE(same.available);
  EXPECT_LT(same.ks, 0.02);
  EXPECT_LT(same.psi, 0.02);

  const DriftScore moved = ScoreDrift(refs, DriftDb(0.6, "novel"));
  EXPECT_TRUE(moved.available);
  EXPECT_GT(moved.ks, 0.3);
  EXPECT_GT(moved.psi, 0.25);
  EXPECT_FALSE(moved.worst_column.empty());

  EXPECT_FALSE(ScoreDrift({}, base).available);
}

TEST(StatsTest, ScoreDriftIsBitIdenticalAcrossThreads) {
  const Database base = DriftDb(0.0, "");
  const std::vector<ColumnSummary> refs = SummarizeTables(base, {"t"});
  const Database current = DriftDb(0.3, "skew");

  const DriftScore serial = ScoreDrift(refs, current);
  std::vector<DriftScore> parallel(4);
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back(
        [&, i] { parallel[i] = ScoreDrift(refs, current); });
  }
  for (auto& w : workers) w.join();
  for (const DriftScore& p : parallel) {
    EXPECT_EQ(p.available, serial.available);
    EXPECT_EQ(p.ks, serial.ks);    // bit-identical, not just close
    EXPECT_EQ(p.psi, serial.psi);
    EXPECT_EQ(p.worst_column, serial.worst_column);
  }
}

}  // namespace
}  // namespace restore
