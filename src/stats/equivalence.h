#ifndef RESTORE_STATS_EQUIVALENCE_H_
#define RESTORE_STATS_EQUIVALENCE_H_

// Distribution-level equivalence of two Db configurations.
//
// Bit-identity is the acceptance contract of the frozen engine, but it is
// the wrong gate for relaxed-exactness work (quantized weights, fast-math
// sampling kernels): those changes are CORRECT precisely when they produce
// the same distributions, not the same bits. This harness replaces
// bit-identity with a statistical contract:
//
//  1. Every incomplete table is completed on both Dbs and each synthesized
//     column's distribution is compared — two-sample KS for numeric
//     columns, χ² (with small-bucket merging) for categorical ones — at a
//     tunable significance level.
//  2. The given workload runs on both Dbs and every per-group aggregate
//     (the fig-10-style metrics) is compared by relative delta.
//
// The gate must have teeth: equivalence_harness_test.cc proves it PASSES on
// bit-identical twin Dbs and FAILS on a deliberately perturbed model
// (Db::PerturbModelsForTest's seeded weight noise). ROADMAP directions 2
// (quantized weights) and 4 (fast-math sampling) are accepted against this
// harness.

#include <string>
#include <vector>

#include "common/result.h"
#include "restore/db.h"
#include "stats/stat_test.h"

namespace restore {

struct EquivalenceOptions {
  /// Reject a numeric completed column when its two-sample KS p-value falls
  /// below this significance level.
  double ks_alpha = 0.01;
  /// Reject a categorical completed column when its χ² p-value falls below
  /// this significance level.
  double chi2_alpha = 0.01;
  /// Maximum tolerated relative delta of any per-group aggregate value.
  double max_rel_delta = 0.05;
  /// Denominator floor of the relative delta (near-zero aggregates).
  double abs_delta_floor = 1e-9;
};

/// Verdict of one completed column's distribution comparison.
struct ColumnComparison {
  std::string table;
  std::string column;
  bool numeric = true;
  double ks = 0.0;      // numeric columns
  double ks_p = 1.0;
  double chi2 = 0.0;    // categorical columns
  double chi2_p = 1.0;
  bool pass = true;
};

/// Verdict of one workload query's aggregate comparison.
struct QueryComparison {
  std::string sql;
  /// Largest relative per-group aggregate delta observed.
  double max_rel_delta = 0.0;
  /// Group key attaining it ("" for global aggregates).
  std::string worst_group;
  /// False when the two Dbs disagree on the group-key set itself.
  bool groups_match = true;
  bool pass = true;
};

struct EquivalenceReport {
  bool equivalent = true;
  std::vector<ColumnComparison> columns;
  std::vector<QueryComparison> queries;
  /// Human-readable verdict (one line per failing comparison) for test
  /// logs and CI output.
  std::string Describe() const;
};

/// Compares `a` and `b` — two Dbs over the same annotated schema — at
/// distribution level: completed-column KS/χ² plus per-group aggregate
/// deltas over `workload` (a list of SQL strings). Both Dbs execute the
/// same queries; any execution error aborts the comparison.
Result<EquivalenceReport> CompareDistributionEquivalence(
    Db* a, Db* b, const std::vector<std::string>& workload,
    const EquivalenceOptions& options = EquivalenceOptions());

}  // namespace restore

#endif  // RESTORE_STATS_EQUIVALENCE_H_
