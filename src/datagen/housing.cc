#include "datagen/housing.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "restore/tuple_factor.h"

namespace restore {

namespace {

constexpr int kNumStates = 12;
const char* const kRoomTypes[] = {"entire_home", "private_room",
                                  "shared_room"};
const char* const kPropertyTypes[] = {"house", "apartment", "condo", "loft"};
const char* const kUrbanization[] = {"urban", "suburban", "rural"};

}  // namespace

Result<Database> GenerateHousing(const HousingConfig& config) {
  Rng rng(config.seed);
  Database db;

  // ---- Neighborhoods -------------------------------------------------------
  Table neighborhood("neighborhood",
                     {{"id", ColumnType::kInt64},
                      {"state", ColumnType::kCategorical},
                      {"pop_density", ColumnType::kDouble},
                      {"urbanization", ColumnType::kCategorical}});
  // Per-state density level plants the state <-> density correlation the
  // paper's motivating example relies on.
  std::vector<double> state_density(kNumStates);
  for (auto& d : state_density) d = rng.NextUniform(0.1, 1.0);
  std::vector<double> nb_density(config.num_neighborhoods);
  for (size_t i = 0; i < config.num_neighborhoods; ++i) {
    const int state = static_cast<int>(rng.NextUint64(kNumStates));
    const double density = std::clamp(
        state_density[state] + rng.NextGaussian(0.0, 0.15), 0.02, 1.2);
    nb_density[i] = density;
    const char* urb = density > 0.7   ? kUrbanization[0]
                      : density > 0.35 ? kUrbanization[1]
                                       : kUrbanization[2];
    RESTORE_RETURN_IF_ERROR(neighborhood.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Categorical(StrFormat("state_%d", state)),
         Value::Double(density * 25000.0), Value::Categorical(urb)}));
  }

  // ---- Landlords ------------------------------------------------------------
  Table landlord("landlord",
                 {{"id", ColumnType::kInt64},
                  {"landlord_since", ColumnType::kInt64},
                  {"landlord_response_time", ColumnType::kInt64},
                  {"landlord_response_rate", ColumnType::kDouble}});
  // Landlord "quality" drives all landlord attributes and (below) which
  // apartments a landlord owns — the correlation completing H4/H5 exploits.
  std::vector<double> landlord_quality(config.num_landlords);
  for (size_t i = 0; i < config.num_landlords; ++i) {
    const double q = rng.NextDouble();
    landlord_quality[i] = q;
    const int64_t since = 2008 + static_cast<int64_t>((1.0 - q) * 12.99);
    const int64_t response_time =
        std::clamp<int64_t>(static_cast<int64_t>((1.0 - q) * 4.0 +
                                                 rng.NextGaussian(0.0, 0.6)),
                            0, 4);
    const double response_rate =
        std::clamp(50.0 + 48.0 * q + rng.NextGaussian(0.0, 6.0), 0.0, 100.0);
    RESTORE_RETURN_IF_ERROR(landlord.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)), Value::Int64(since),
         Value::Int64(response_time), Value::Double(response_rate)}));
  }

  // ---- Apartments ------------------------------------------------------------
  Table apartment("apartment",
                  {{"id", ColumnType::kInt64},
                   {"neighborhood_id", ColumnType::kInt64},
                   {"landlord_id", ColumnType::kInt64},
                   {"price", ColumnType::kDouble},
                   {"room_type", ColumnType::kCategorical},
                   {"property_type", ColumnType::kCategorical},
                   {"accommodates", ColumnType::kInt64}});
  for (size_t i = 0; i < config.num_apartments; ++i) {
    const size_t nb = rng.NextUint64(config.num_neighborhoods);
    const double density = nb_density[nb];

    // Room type correlates with urbanization; accommodates with room type.
    const double u = rng.NextDouble();
    int room;
    if (density > 0.6) {
      room = u < 0.55 ? 0 : (u < 0.9 ? 1 : 2);
    } else {
      room = u < 0.75 ? 0 : (u < 0.95 ? 1 : 2);
    }
    const int64_t accommodates =
        room == 0 ? rng.NextInt64(2, 8)
                  : (room == 1 ? rng.NextInt64(1, 3) : rng.NextInt64(1, 2));
    const double v = rng.NextDouble();
    int prop;
    if (density > 0.6) {
      prop = v < 0.5 ? 1 : (v < 0.75 ? 2 : (v < 0.9 ? 3 : 0));
    } else {
      prop = v < 0.6 ? 0 : (v < 0.85 ? 1 : (v < 0.95 ? 2 : 3));
    }

    // Price: density base + room/size effects + noise.
    const double price = std::max(
        20.0, 40.0 + 180.0 * density + 30.0 * static_cast<double>(room == 0) +
                  12.0 * static_cast<double>(accommodates) +
                  rng.NextGaussian(0.0, 18.0));

    // Landlord assignment: quality tracks the price percentile (plus noise),
    // so landlord attributes are predictable from apartment evidence.
    const double price_pct = std::clamp((price - 40.0) / 320.0, 0.0, 1.0);
    const double target_q =
        std::clamp(price_pct + rng.NextGaussian(0.0, 0.22), 0.0, 0.999);
    const size_t ll = std::min(
        config.num_landlords - 1,
        static_cast<size_t>(target_q * static_cast<double>(
                                           config.num_landlords)));

    RESTORE_RETURN_IF_ERROR(apartment.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Int64(static_cast<int64_t>(nb)),
         Value::Int64(static_cast<int64_t>(ll)), Value::Double(price),
         Value::Categorical(kRoomTypes[room]),
         Value::Categorical(kPropertyTypes[prop]),
         Value::Int64(accommodates)}));
  }

  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(neighborhood)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(landlord)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(apartment)));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("apartment", "neighborhood_id", "neighborhood", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("apartment", "landlord_id", "landlord", "id"));
  for (const auto& fk : std::vector<ForeignKey>(db.foreign_keys())) {
    RESTORE_RETURN_IF_ERROR(AttachTupleFactors(&db, fk));
  }
  return db;
}

}  // namespace restore
