#ifndef RESTORE_SERVER_TENANT_REGISTRY_H_
#define RESTORE_SERVER_TENANT_REGISTRY_H_

// Multi-tenancy for the serving layer: one listener fronting several Db
// instances (one per dataset). Requests address a tenant via the URL
// (`POST /v1/query/<tenant>`); the registry routes the name to its Db and
// enforces the tenant's own concurrency quota on top of the server-wide
// admission bound, so one noisy dataset cannot starve the others.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "restore/db.h"
#include "server/admission.h"

namespace restore {
namespace server {

struct TenantOptions {
  /// Per-tenant bound on queries in flight; 0 = only the server-wide bound.
  size_t max_inflight_queries = 0;
};

/// One served dataset: a name, its Db, and its admission quota.
class Tenant {
 public:
  Tenant(std::string name, std::shared_ptr<Db> db, TenantOptions options)
      : name_(std::move(name)),
        db_(std::move(db)),
        admission_(options.max_inflight_queries) {}

  const std::string& name() const { return name_; }
  const std::shared_ptr<Db>& db() const { return db_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  std::string name_;
  std::shared_ptr<Db> db_;
  AdmissionController admission_;
};

/// Name -> tenant routing table. Build it fully before starting the server;
/// lookups afterwards are lock-free reads of immutable state.
class TenantRegistry {
 public:
  /// Registers `db` under `name` (non-empty, no '/'). The first tenant
  /// added becomes the default that an unqualified `/v1/query` addresses.
  Status Add(const std::string& name, std::shared_ptr<Db> db,
             TenantOptions options = TenantOptions());

  /// Resolves a tenant by name; the empty name resolves to the default
  /// tenant. nullptr when unknown (or the registry is empty).
  std::shared_ptr<Tenant> Resolve(const std::string& name) const;

  /// All tenants in registration order (for /metrics iteration).
  const std::vector<std::shared_ptr<Tenant>>& tenants() const {
    return tenants_;
  }

  size_t size() const { return tenants_.size(); }

 private:
  std::vector<std::shared_ptr<Tenant>> tenants_;
};

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_TENANT_REGISTRY_H_
