// Reproduces Figure 6: 95% confidence intervals for a count query on the
// synthetic dataset, removal correlation fixed at 40%, varying
// predictability and keep rate. The true fraction must fall inside the
// predicted bounds, which themselves fall inside the theoretical min/max.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/confidence_util.h"
#include "common/string_util.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"

namespace restore {
namespace bench {
namespace {

/// Picks the attribute value of b with the largest complete-vs-incomplete
/// deviation (the paper's "most challenging" value).
Result<std::string> MostBiasedValue(const Database& complete,
                                    const Database& incomplete) {
  RESTORE_ASSIGN_OR_RETURN(const Table* truth, complete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Table* partial,
                           incomplete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Column* col, truth->GetColumn("b"));
  std::string worst;
  double worst_dev = -1.0;
  for (size_t code = 0; code < col->dictionary()->size(); ++code) {
    const std::string value =
        col->dictionary()->ValueOf(static_cast<int64_t>(code));
    RESTORE_ASSIGN_OR_RETURN(double tf,
                             CategoricalFraction(*truth, "b", value));
    RESTORE_ASSIGN_OR_RETURN(double pf,
                             CategoricalFraction(*partial, "b", value));
    if (std::abs(tf - pf) > worst_dev) {
      worst_dev = std::abs(tf - pf);
      worst = value;
    }
  }
  return worst;
}

int RunGrid(const std::vector<double>& correlations, const char* header) {
  FigureJson json("fig6");
  std::printf("%s\n", header);
  std::printf(
      "removal_correlation,keep_rate,predictability,true_fraction,"
      "ci_lower,ci_point,ci_upper,theoretical_min,theoretical_max,"
      "covered\n");
  const std::vector<double> predictabilities =
      FullGrids() ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                  : std::vector<double>{0.2, 0.6, 1.0};
  for (double corr : correlations) {
    for (double keep : KeepRates()) {
      for (double pred : predictabilities) {
        SyntheticConfig config;
        config.num_parents = 300;
        config.predictability = pred;
        config.seed = 900;
        auto complete = GenerateSynthetic(config);
        if (!complete.ok()) continue;
        BiasedRemovalConfig removal;
        removal.table = "table_b";
        removal.column = "b";
        removal.keep_rate = keep;
        removal.removal_correlation = corr;
        removal.seed = 901;
        auto incomplete = ApplyBiasedRemoval(*complete, removal);
        if (!incomplete.ok()) continue;
        if (!ThinTupleFactors(&*incomplete, 0.3, 902).ok()) continue;
        SchemaAnnotation annotation;
        annotation.MarkIncomplete("table_b");
        auto value = MostBiasedValue(*complete, *incomplete);
        if (!value.ok()) continue;
        PathModelConfig model_config;
        model_config.epochs = 10;
        model_config.hidden_dim = 40;
        model_config.embed_dim = 8;
        auto eval = EvaluateCountConfidence(
            *complete, *incomplete, annotation, {"table_a", "table_b"},
            "table_b", "b", *value, model_config, 903);
        if (!eval.ok()) {
          std::fprintf(stderr, "fig6: %s\n",
                       eval.status().ToString().c_str());
          continue;
        }
        const bool covered = eval->true_fraction >= eval->interval.lower &&
                             eval->true_fraction <= eval->interval.upper;
        std::printf("%.0f%%,%.0f%%,%.0f%%,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%s\n",
                    corr * 100, keep * 100, pred * 100, eval->true_fraction,
                    eval->interval.lower, eval->interval.point,
                    eval->interval.upper, eval->interval.theoretical_min,
                    eval->interval.theoretical_max, covered ? "yes" : "no");
        json.Add(StrFormat("corr=%.0f/keep=%.0f/pred=%.0f", corr * 100,
                           keep * 100, pred * 100),
                 {{"true_fraction", eval->true_fraction},
                  {"ci_lower", eval->interval.lower},
                  {"ci_point", eval->interval.point},
                  {"ci_upper", eval->interval.upper},
                  {"covered", covered ? 1.0 : 0.0}});
      }
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() {
  return restore::bench::RunGrid(
      {0.4},
      "# Figure 6: confidence intervals on synthetic data "
      "(removal correlation 40%)");
}
