// Housing-market scenario (the paper's motivating example): the apartment
// table is systematically incomplete — listings in expensive areas are
// underrepresented — and we want the average rent per landlord cohort.
//
//   $ ./build/examples/housing_market

#include <cstdio>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/engine.h"

using namespace restore;

int main() {
  // Complete housing database (neighborhood / landlord / apartment) and the
  // H1 incompleteness setup: apartments removed with a price-correlated
  // bias, 40% keep rate, 30% of tuple factors observed.
  auto complete = BuildCompleteDatabase("housing", /*seed=*/31, /*scale=*/0.3);
  if (!complete.ok()) return 1;
  auto setup = SetupByName("H1");
  auto incomplete = ApplySetup(*complete, *setup, /*keep_rate=*/0.4,
                               /*removal_correlation=*/0.6, /*seed=*/32);
  if (!incomplete.ok()) return 1;

  CompletionEngine engine(&*incomplete, AnnotationFor(*setup), EngineConfig());
  if (auto s = engine.TrainModels(); !s.ok()) {
    std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // How biased is the incomplete data, and how much does completion help?
  auto true_mean = ColumnMean(*complete->GetTable("apartment").value(),
                              "price");
  auto incomplete_mean =
      ColumnMean(*incomplete->GetTable("apartment").value(), "price");
  auto completed_table = engine.CompleteTable("apartment");
  if (!completed_table.ok()) {
    std::fprintf(stderr, "%s\n", completed_table.status().ToString().c_str());
    return 1;
  }
  auto completed_mean = ColumnMean(*completed_table, "price");
  std::printf("average rent:   truth %.2f | incomplete %.2f | completed "
              "%.2f\n",
              *true_mean, *incomplete_mean, *completed_mean);
  std::printf("bias reduction: %.1f%%\n\n",
              100.0 * BiasReduction(*true_mean, *incomplete_mean,
                                    *completed_mean));
  std::printf("selected completion path:");
  auto path = engine.SelectedPathFor("apartment");
  for (const auto& t : *path) std::printf(" %s", t.c_str());
  std::printf("\n\n");

  // Run the two H1 workload queries of Table 1 end to end.
  for (const auto& wq : HousingWorkload()) {
    if (wq.setup != "H1") continue;
    auto truth = ExecuteSql(*complete, wq.sql);
    auto naive = ExecuteSql(*incomplete, wq.sql);
    auto completed = engine.ExecuteCompletedSql(wq.sql);
    if (!truth.ok() || !naive.ok() || !completed.ok()) continue;
    std::printf("%s: %s\n", wq.name.c_str(), wq.sql.c_str());
    std::printf("  rel. error incomplete: %.3f | completed: %.3f\n",
                AverageRelativeError(*truth, *naive),
                AverageRelativeError(*truth, *completed));
  }
  return 0;
}
