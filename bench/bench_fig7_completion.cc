// Reproduces Figure 7: data completion on the real-world-style datasets.
//  7a: bias reduction per setup (H1-H5, M1-M5) x keep rate x removal corr.
//  7b: cardinality correction on the same grid (TF keep 30% / 20%).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace restore {
namespace bench {
namespace {

int Run() {
  FigureJson json("fig7");
  const double housing_scale = FullGrids() ? 0.5 : 0.15;
  const double movies_scale = FullGrids() ? 0.4 : 0.1;
  std::printf("# Figure 7a/7b: bias reduction and cardinality correction\n");
  std::printf(
      "setup,keep_rate,removal_correlation,bias_reduction,"
      "cardinality_correction\n");
  std::vector<CompletionSetup> setups = HousingSetups();
  for (const auto& m : MovieSetups()) setups.push_back(m);
  for (const auto& setup : setups) {
    const double scale =
        setup.dataset == "housing" ? housing_scale : movies_scale;
    for (double keep : KeepRates()) {
      for (double corr : RemovalCorrelations()) {
        auto run = MakeSetupRun(setup.name, keep, corr, scale, 1000);
        if (!run.ok()) {
          std::fprintf(stderr, "%s: %s\n", setup.name.c_str(),
                       run.status().ToString().c_str());
          continue;
        }
        auto db = OpenBenchDb(*run, BenchEngineConfig());
        if (!db.ok()) continue;
        auto path = (*db)->SelectedPathFor(setup.removed_table);
        if (!path.ok()) continue;
        auto eval = EvaluatePath(*run, **db, *path);
        if (!eval.ok()) {
          std::fprintf(stderr, "%s: %s\n", setup.name.c_str(),
                       eval.status().ToString().c_str());
          continue;
        }
        std::printf("%s,%.0f%%,%.0f%%,%.3f,%.3f\n", setup.name.c_str(),
                    keep * 100, corr * 100, eval->bias_reduction,
                    eval->cardinality_correction);
        json.Add(StrFormat("%s/keep=%.0f/corr=%.0f", setup.name.c_str(),
                           keep * 100, corr * 100),
                 {{"bias_reduction", eval->bias_reduction},
                  {"cardinality_correction", eval->cardinality_correction}});
        std::fflush(stdout);
      }
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
