#include "datagen/workload.h"

namespace restore {

std::vector<WorkloadQuery> HousingWorkload() {
  return {
      {"Q1", "H1",
       "SELECT SUM(price) FROM apartment WHERE room_type='entire_home';"},
      {"Q2", "H2",
       "SELECT COUNT(*) FROM apartment WHERE room_type='entire_home' AND "
       "property_type='house' GROUP BY property_type;"},
      {"Q3", "H3",
       "SELECT COUNT(*) FROM apartment WHERE property_type='house';"},
      {"Q4", "H4",
       "SELECT COUNT(*) FROM landlord WHERE landlord_since >= 2011;"},
      {"Q5", "H5",
       "SELECT AVG(landlord_response_rate) FROM landlord WHERE "
       "landlord_response_time >= 2;"},
      {"Q6", "H1",
       "SELECT AVG(price) FROM landlord NATURAL JOIN apartment WHERE "
       "room_type='entire_home' GROUP BY landlord_since;"},
      {"Q7", "H2",
       "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
       "accommodates >= 3 GROUP BY landlord_since;"},
      {"Q8", "H3",
       "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
       "landlord_since >= 2013 GROUP BY landlord_since;"},
      {"Q9", "H4",
       "SELECT SUM(landlord_since) FROM landlord NATURAL JOIN apartment "
       "WHERE room_type='entire_home' AND landlord_response_time >= 2;"},
      {"Q10", "H5",
       "SELECT AVG(landlord_response_rate) FROM landlord NATURAL JOIN "
       "apartment WHERE room_type='entire_home' AND landlord_response_time "
       ">= 2;"},
  };
}

std::vector<WorkloadQuery> MovieWorkload() {
  return {
      {"Q1", "M1", "SELECT COUNT(*) FROM movie GROUP BY production_year;"},
      {"Q2", "M2",
       "SELECT COUNT(*) FROM movie WHERE genre='drama' GROUP BY "
       "production_year;"},
      {"Q3", "M3",
       "SELECT COUNT(*) FROM movie WHERE genre='drama' GROUP BY country;"},
      {"Q4", "M4",
       "SELECT AVG(birth_year) FROM director WHERE gender='m';"},
      {"Q5", "M5",
       "SELECT COUNT(*) FROM company WHERE country_code='us';"},
      {"Q6", "M1",
       "SELECT SUM(production_year) FROM movie NATURAL JOIN movie_director "
       "NATURAL JOIN director WHERE birth_country='usa' GROUP BY "
       "production_year;"},
      {"Q7", "M2",
       "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company NATURAL JOIN "
       "company GROUP BY country_code;"},
      {"Q8", "M3",
       "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company NATURAL JOIN "
       "company WHERE country_code='us' GROUP BY production_year;"},
      {"Q9", "M4",
       "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN "
       "director WHERE gender='m';"},
      {"Q10", "M5",
       "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company NATURAL JOIN "
       "company WHERE country_code='us' GROUP BY country;"},
  };
}

}  // namespace restore
