#include "restore/confidence.h"

#include <algorithm>
#include <cmath>

namespace restore {

double PredictionCertainty(const std::vector<float>& p_model,
                           const std::vector<double>& p_incomplete) {
  double kl = 0.0;
  const size_t n = std::min(p_model.size(), p_incomplete.size());
  for (size_t i = 0; i < n; ++i) {
    const double p = std::max(1e-9, static_cast<double>(p_model[i]));
    const double q = std::max(1e-9, p_incomplete[i]);
    kl += p * std::log(p / q);
  }
  kl = std::max(0.0, kl);
  return 1.0 - std::exp(-kl);
}

ConfidenceInterval CountFractionInterval(
    const std::vector<std::vector<float>>& synth_probs,
    const std::vector<double>& p_incomplete, size_t value_code,
    size_t existing_with_value, size_t existing_total, double level) {
  ConfidenceInterval ci;
  const double n_synth = static_cast<double>(synth_probs.size());
  const double total = static_cast<double>(existing_total) + n_synth;
  if (total == 0.0) return ci;

  double expected = 0.0;
  double upper = 0.0;
  double lower = 0.0;
  for (const auto& probs : synth_probs) {
    const double c = PredictionCertainty(probs, p_incomplete);
    const double p_value = value_code < probs.size()
                               ? static_cast<double>(probs[value_code])
                               : 0.0;
    expected += p_value;
    // Mix the model's prediction with the extreme distributions, weighted by
    // (1 - certainty): an uncertain model contributes wide bounds.
    upper += c * p_value + (1.0 - c) * level;
    lower += c * p_value + (1.0 - c) * (1.0 - level);
  }
  const double base = static_cast<double>(existing_with_value);
  ci.point = (base + expected) / total;
  ci.upper = (base + upper) / total;
  ci.lower = (base + lower) / total;
  ci.theoretical_max = (base + n_synth) / total;
  ci.theoretical_min = base / total;
  // Bound sanity: lower <= point <= upper within the theoretical range.
  ci.lower = std::clamp(ci.lower, ci.theoretical_min, ci.theoretical_max);
  ci.upper = std::clamp(ci.upper, ci.theoretical_min, ci.theoretical_max);
  if (ci.lower > ci.upper) std::swap(ci.lower, ci.upper);
  return ci;
}

ConfidenceInterval AvgInterval(
    const std::vector<std::vector<float>>& synth_probs,
    const std::vector<double>& p_incomplete,
    const std::vector<double>& code_means, double existing_sum,
    size_t existing_count, double level) {
  ConfidenceInterval ci;
  const double n_synth = static_cast<double>(synth_probs.size());
  const double total = static_cast<double>(existing_count) + n_synth;
  if (total == 0.0 || code_means.empty()) return ci;

  const double min_v =
      *std::min_element(code_means.begin(), code_means.end());
  const double max_v =
      *std::max_element(code_means.begin(), code_means.end());

  double expected = 0.0;
  double upper = 0.0;
  double lower = 0.0;
  for (const auto& probs : synth_probs) {
    const double c = PredictionCertainty(probs, p_incomplete);
    double mean = 0.0;
    for (size_t k = 0; k < probs.size() && k < code_means.size(); ++k) {
      mean += static_cast<double>(probs[k]) * code_means[k];
    }
    expected += mean;
    // P_upper concentrates `level` mass on the maximal code, the remainder
    // on the model's expectation (and vice versa for P_lower).
    const double up = level * max_v + (1.0 - level) * mean;
    const double lo = level * min_v + (1.0 - level) * mean;
    upper += c * mean + (1.0 - c) * up;
    lower += c * mean + (1.0 - c) * lo;
  }
  ci.point = (existing_sum + expected) / total;
  ci.upper = (existing_sum + upper) / total;
  ci.lower = (existing_sum + lower) / total;
  ci.theoretical_max = (existing_sum + n_synth * max_v) / total;
  ci.theoretical_min = (existing_sum + n_synth * min_v) / total;
  if (ci.lower > ci.upper) std::swap(ci.lower, ci.upper);
  return ci;
}

}  // namespace restore
