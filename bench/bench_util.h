#ifndef RESTORE_BENCH_BENCH_UTIL_H_
#define RESTORE_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Every bench binary
// prints the series of one paper figure as CSV to stdout.
//
// Scales: by default the harnesses run scaled-down grids so the full suite
// finishes in minutes on a laptop. Set RESTORE_BENCH_FULL=1 to sweep the
// paper's full parameter grids.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/incompleteness.h"
#include "datagen/setups.h"
#include "datagen/synthetic.h"
#include "restore/db.h"
#include "storage/database.h"

namespace restore {
namespace bench {

/// True if the RESTORE_BENCH_FULL environment variable requests the paper's
/// full parameter grids.
inline bool FullGrids() {
  const char* v = std::getenv("RESTORE_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

/// Keep rates / removal correlations swept by the experiments.
inline std::vector<double> KeepRates() {
  return FullGrids() ? std::vector<double>{0.2, 0.4, 0.6, 0.8}
                     : std::vector<double>{0.2, 0.6};
}
inline std::vector<double> RemovalCorrelations() {
  return FullGrids() ? std::vector<double>{0.2, 0.4, 0.6, 0.8}
                     : std::vector<double>{0.2, 0.8};
}

/// Default engine configuration used by the harnesses (small models,
/// enough optimizer steps via the min_train_steps floor).
EngineConfig BenchEngineConfig(bool use_ssar = false);

// ---- Machine-readable results ----------------------------------------------

/// One benchmark measurement destined for a JSON results file. `counters`
/// carries rate metrics such as items_per_second.
struct BenchRecord {
  std::string name;
  double real_ns = 0.0;  // wall time per iteration
  double cpu_ns = 0.0;   // CPU time per iteration
  int64_t iterations = 0;
  std::map<std::string, double> counters;
};

/// Writes `records` to `path` as a JSON document
/// ({"benchmarks": [{name, real_ns, cpu_ns, iterations, <counters>...}]}),
/// so successive PRs can diff perf trajectories mechanically
/// (e.g. BENCH_micro.json emitted by bench_micro).
Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchRecord>& records);

/// Machine-readable mirror of a figure harness's CSV output: every result
/// row is recorded as one BenchRecord (name = the row's identity, counters =
/// its numeric series values) and written as BENCH_<figure>.json next to the
/// CSV on stdout, so full reproduction runs diff mechanically run-to-run
/// just like bench_micro.
class FigureJson {
 public:
  explicit FigureJson(std::string figure) : figure_(std::move(figure)) {}

  /// Records one row. `name` identifies the series point (e.g.
  /// "H1/keep=50/corr=60/path=neighborhood>apartment").
  void Add(const std::string& name, std::map<std::string, double> counters);

  /// Writes BENCH_<figure>.json into the current directory and reports the
  /// destination on stderr (the CSV on stdout stays byte-identical).
  Status Write() const;

 private:
  std::string figure_;
  std::vector<BenchRecord> records_;
};

/// A fully-prepared completion scenario for one setup of Fig 4c.
struct SetupRun {
  CompletionSetup setup;
  Database complete;
  Database incomplete;
  SchemaAnnotation annotation;
};

/// Builds the complete + incomplete databases of a setup at the given keep
/// rate / removal correlation. `scale` multiplies dataset sizes.
Result<SetupRun> MakeSetupRun(const std::string& setup_name, double keep_rate,
                              double removal_correlation, double scale,
                              uint64_t seed);

/// The statistic used by the bias-reduction metric for a setup's biased
/// attribute: the mean for numeric columns, the biased value's fraction for
/// categorical columns.
Result<double> BiasedStat(const SetupRun& run, const Table& table);

/// Computes the biased statistic over existing + synthesized tuples of the
/// removed table.
Result<double> CompletedStat(const SetupRun& run,
                             const CompletionResult& completion);

/// Opens the service facade over a setup's incomplete database with the
/// bench engine configuration (models train lazily on first use).
Result<std::shared_ptr<Db>> OpenBenchDb(const SetupRun& run,
                                        EngineConfig config);

/// Bias reduction achieved by completing via `path` with `db`.
struct PathEval {
  double bias_reduction = 0.0;
  double cardinality_correction = 0.0;
  double completion_seconds = 0.0;
};
Result<PathEval> EvaluatePath(const SetupRun& run, Db& db,
                              const std::vector<std::string>& path);

}  // namespace bench
}  // namespace restore

#endif  // RESTORE_BENCH_BENCH_UTIL_H_
