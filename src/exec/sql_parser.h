#ifndef RESTORE_EXEC_SQL_PARSER_H_
#define RESTORE_EXEC_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "exec/query.h"

namespace restore {

/// Parses an SPJA SQL query of the grammar used throughout the paper's
/// workload (Table 1):
///
///   SELECT agg_list FROM table (NATURAL JOIN table)*
///     [WHERE predicate (AND predicate)*]
///     [GROUP BY column (, column)*] [;]
///
///   agg_list  := agg (, agg)*
///   agg       := COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
///   predicate := col (= | != | <> | < | <= | > | >=) (literal | ?)
///   literal   := number | 'string'
///
/// A `?` is a positional parameter placeholder for prepared queries
/// (see exec/prepared.h); the resulting Query must be bound before
/// execution.
///
/// Keywords are case-insensitive; identifiers may contain dots and
/// underscores. Comparison operators written as unicode >= / <= in the paper
/// are accepted as ">=" / "<=".
Result<Query> ParseSql(const std::string& sql);

}  // namespace restore

#endif  // RESTORE_EXEC_SQL_PARSER_H_
