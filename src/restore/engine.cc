#include "restore/engine.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/join.h"
#include "exec/sql_parser.h"

namespace restore {

CompletionEngine::CompletionEngine(const Database* db,
                                   SchemaAnnotation annotation,
                                   EngineConfig config)
    : db_(db),
      annotation_(std::move(annotation)),
      config_(std::move(config)),
      rng_(config_.seed) {}

std::string CompletionEngine::PathKey(const std::vector<std::string>& path) {
  return Join(path, "->");
}

Status CompletionEngine::TrainModels() {
  RESTORE_RETURN_IF_ERROR(annotation_.Validate(*db_));
  for (const auto& target : annotation_.incomplete_tables()) {
    std::vector<std::vector<std::string>> paths = EnumerateCompletionPaths(
        *db_, annotation_, target, config_.max_path_len);
    if (paths.empty()) {
      return Status::FailedPrecondition(
          StrFormat("no completion path for incomplete table '%s'",
                    target.c_str()));
    }
    if (paths.size() > config_.max_candidates) {
      paths.resize(config_.max_candidates);
    }
    // Candidate models are trained lazily by CandidatesFor / ModelForPath:
    // queries typically exercise one incomplete table's candidates, and
    // merged path models already serve the other tables on the same path.
    candidates_[target] = std::move(paths);
  }
  return Status::OK();
}

Result<const PathModel*> CompletionEngine::ModelForPath(
    const std::vector<std::string>& path) {
  const std::string key = PathKey(path);
  auto it = models_.find(key);
  if (it != models_.end()) return it->second.get();
  PathModelConfig cfg = config_.model;
  cfg.seed = config_.seed + models_.size() + 1;
  RESTORE_ASSIGN_OR_RETURN(std::unique_ptr<PathModel> model,
                           PathModel::Train(*db_, annotation_, path, cfg));
  total_train_seconds_ += model->train_seconds();
  const PathModel* raw = model.get();
  models_.emplace(key, std::move(model));
  return raw;
}

Result<std::vector<CompletionEngine::Candidate>>
CompletionEngine::CandidatesFor(const std::string& target) {
  auto it = candidates_.find(target);
  if (it == candidates_.end()) {
    return Status::NotFound(
        StrFormat("no candidates for '%s' (call TrainModels first)",
                  target.c_str()));
  }
  // Candidate models are independent: train the missing ones concurrently on
  // the shared pool. Seeds are assigned up front in candidate order — the
  // exact values the sequential ModelForPath calls would have produced — so
  // the trained models are identical regardless of completion order or
  // thread count. models_ is only mutated after all training joined.
  struct Pending {
    std::string key;
    const std::vector<std::string>* path;
    PathModelConfig cfg;
  };
  std::vector<Pending> pending;
  std::set<std::string> queued;
  for (const auto& path : it->second) {
    const std::string key = PathKey(path);
    if (models_.count(key) > 0 || queued.count(key) > 0) continue;
    PathModelConfig cfg = config_.model;
    cfg.seed = config_.seed + models_.size() + queued.size() + 1;
    queued.insert(key);
    pending.push_back({key, &path, cfg});
  }
  if (!pending.empty()) {
    std::vector<Status> errors(pending.size(), Status::OK());
    std::vector<std::unique_ptr<PathModel>> trained(pending.size());
    ThreadPool::Global().ParallelFor(
        0, pending.size(), 1, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            Result<std::unique_ptr<PathModel>> r = PathModel::Train(
                *db_, annotation_, *pending[i].path, pending[i].cfg);
            if (r.ok()) {
              trained[i] = std::move(r).value();
            } else {
              errors[i] = r.status();
            }
          }
        });
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!errors[i].ok()) return errors[i];
      total_train_seconds_ += trained[i]->train_seconds();
      models_.emplace(pending[i].key, std::move(trained[i]));
    }
  }
  std::vector<Candidate> out;
  for (const auto& path : it->second) {
    out.push_back({path, models_.at(PathKey(path)).get()});
  }
  return out;
}

Result<std::vector<std::string>> CompletionEngine::SelectedPathFor(
    const std::string& target) {
  auto sel = selected_.find(target);
  if (sel != selected_.end()) return sel->second;
  RESTORE_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                           CandidatesFor(target));
  if (cands.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no trained candidates for '%s'", target.c_str()));
  }
  std::vector<std::vector<std::string>> paths;
  std::vector<const PathModel*> models;
  for (const auto& c : cands) {
    paths.push_back(c.path);
    models.push_back(c.model);
  }
  PathModelConfig probe = config_.model;
  probe.epochs = std::max<size_t>(2, probe.epochs / 3);
  RESTORE_ASSIGN_OR_RETURN(
      size_t best,
      SelectPath(*db_, annotation_, target, paths, models, config_.selection,
                 probe, /*holdout_fraction=*/0.3, config_.seed + 7));
  selected_[target] = paths[best];
  return paths[best];
}

Result<CompletionResult> CompletionEngine::CompleteViaPath(
    const std::vector<std::string>& path, const CompletionOptions& options) {
  RESTORE_ASSIGN_OR_RETURN(const PathModel* model, ModelForPath(path));
  IncompletenessJoinExecutor exec(db_, &annotation_);
  return exec.CompletePathJoin(*model, rng_, options);
}

Result<Table> CompletionEngine::CompleteTable(const std::string& target) {
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> path,
                           SelectedPathFor(target));
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(path));
  RESTORE_ASSIGN_OR_RETURN(const Table* base, db_->GetTable(target));

  // Completed table = existing tuples + synthesized tuples (attr columns;
  // key columns of synthesized tuples are NULL).
  Table out(target);
  auto it = completion.synthesized.find(target);
  for (const auto& col : base->columns()) {
    Column merged = col;
    if (it != completion.synthesized.end()) {
      const Column* synth = nullptr;
      for (const auto& sc : it->second) {
        if (sc.name() == col.name()) {
          synth = &sc;
          break;
        }
      }
      const size_t n =
          it->second.empty() ? 0 : it->second.front().size();
      for (size_t r = 0; r < n; ++r) {
        if (synth == nullptr) {
          merged.AppendNull();
        } else if (synth->type() == ColumnType::kDouble) {
          merged.AppendDouble(synth->GetDouble(r));
        } else {
          merged.AppendInt64(synth->GetInt64(r));
        }
      }
    }
    RESTORE_RETURN_IF_ERROR(out.AddColumn(std::move(merged)));
  }
  return out;
}

Result<Table> CompletionEngine::CompletedJoinFor(
    const std::vector<std::string>& tables) {
  // Single incomplete table: answer from the completed TABLE rather than a
  // completed path join — the path necessarily enters through a fan-out
  // (e.g. a link table), which would count each target tuple once per link.
  if (tables.size() == 1 && annotation_.IsIncomplete(tables[0])) {
    // Exact-match caching only: projecting a cached superset join would
    // change tuple multiplicities.
    const std::set<std::string> key{tables[0]};
    if (config_.enable_cache) {
      const Table* cached = cache_.GetExact(key);
      if (cached != nullptr) return *cached;
    }
    RESTORE_ASSIGN_OR_RETURN(Table completed, CompleteTable(tables[0]));
    completed.QualifyColumnNames(tables[0]);
    if (config_.enable_cache) cache_.Put(key, completed);
    return completed;
  }
  std::set<std::string> table_set(tables.begin(), tables.end());
  if (config_.enable_cache) {
    const Table* cached = cache_.GetCovering(table_set);
    if (cached != nullptr) return *cached;
  }

  // Incomplete tables among the requested join.
  std::vector<std::string> incomplete;
  for (const auto& t : tables) {
    if (annotation_.IsIncomplete(t)) incomplete.push_back(t);
  }
  if (incomplete.empty()) {
    return NaturalJoinTables(*db_, tables);
  }

  // Build the extended completion path: a completion path for the primary
  // incomplete table, then any remaining query tables appended in FK-
  // connected order. The walk completes every incomplete table it crosses.
  //
  // Path choice is query-aware: a fan-out hop into a table OUTSIDE the query
  // multiplies the join rows of the answer (Section 4.4 would require
  // reweighting), so candidates are ranked first by how few off-query
  // fan-out hops they introduce, then by the configured selection strategy.
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> selected,
                           SelectedPathFor(incomplete[0]));
  RESTORE_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                           CandidatesFor(incomplete[0]));
  auto fanout_penalty = [&](const std::vector<std::string>& p) {
    size_t penalty = 0;
    for (size_t k = 0; k + 1 < p.size(); ++k) {
      auto fan = db_->IsFanOut(p[k], p[k + 1]);
      const bool off_query =
          std::find(tables.begin(), tables.end(), p[k + 1]) == tables.end();
      if (fan.ok() && fan.value() && off_query) ++penalty;
    }
    return penalty;
  };
  std::vector<std::string> path = selected;
  size_t best_penalty = fanout_penalty(selected);
  for (const auto& cand : cands) {
    const size_t penalty = fanout_penalty(cand.path);
    if (penalty < best_penalty) {
      best_penalty = penalty;
      path = cand.path;
    }
  }
  std::vector<std::string> extended = path;
  std::set<std::string> placed(path.begin(), path.end());
  std::set<std::string> remaining;
  for (const auto& t : tables) {
    if (placed.count(t) == 0) remaining.insert(t);
  }
  while (!remaining.empty()) {
    bool progress = false;
    // Prefer a table connected to the LAST path table (a proper walk), else
    // any connected table.
    for (const auto& cand : remaining) {
      if (db_->FindForeignKey(extended.back(), cand).ok()) {
        extended.push_back(cand);
        placed.insert(cand);
        remaining.erase(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (const auto& cand : remaining) {
      bool connected = false;
      for (const auto& done : placed) {
        if (db_->FindForeignKey(cand, done).ok()) {
          connected = true;
          break;
        }
      }
      if (connected) {
        // Re-root the walk through this table by appending it; the path
        // model treats consecutive tables as hops, so enforce adjacency by
        // inserting it right after a neighbor.
        return Status::Unimplemented(
            StrFormat("query table '%s' is not FK-adjacent to the completion "
                      "path tail; bushy completion plans are not supported",
                      cand.c_str()));
      }
      return Status::InvalidArgument(
          StrFormat("query table '%s' is not connected", cand.c_str()));
    }
  }

  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(extended));
  if (config_.enable_cache) {
    std::set<std::string> covered(extended.begin(), extended.end());
    cache_.Put(covered, completion.joined);
  }
  return std::move(completion.joined);
}

namespace {

/// Qualifies an unqualified column reference against the QUERY's tables (the
/// completed join may contain extra evidence tables with clashing column
/// names, e.g. actor.gender vs director.gender).
Result<std::string> QualifyAgainstQueryTables(
    const Database& db, const std::vector<std::string>& tables,
    const std::string& column) {
  if (column.find('.') != std::string::npos) return column;
  std::string qualified;
  int hits = 0;
  for (const auto& t : tables) {
    RESTORE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(t));
    if (table->HasColumn(column)) {
      qualified = t + "." + column;
      ++hits;
    }
  }
  if (hits == 0) {
    return Status::NotFound(
        StrFormat("column '%s' not found in query tables", column.c_str()));
  }
  if (hits > 1) {
    return Status::InvalidArgument(
        StrFormat("column reference '%s' is ambiguous", column.c_str()));
  }
  return qualified;
}

}  // namespace

Result<QueryResult> CompletionEngine::ExecuteCompleted(const Query& query) {
  if (query.tables.empty() || query.aggregates.empty()) {
    return Status::InvalidArgument("malformed query");
  }
  // Rewrite column references to be table-qualified w.r.t. the query tables
  // so that evidence tables pulled in by the completion path cannot make
  // them ambiguous.
  Query rewritten = query;
  for (auto& agg : rewritten.aggregates) {
    if (agg.column.empty()) continue;
    RESTORE_ASSIGN_OR_RETURN(
        agg.column, QualifyAgainstQueryTables(*db_, query.tables, agg.column));
  }
  for (auto& pred : rewritten.predicates) {
    RESTORE_ASSIGN_OR_RETURN(
        pred.column,
        QualifyAgainstQueryTables(*db_, query.tables, pred.column));
  }
  for (auto& g : rewritten.group_by) {
    RESTORE_ASSIGN_OR_RETURN(
        g, QualifyAgainstQueryTables(*db_, query.tables, g));
  }
  RESTORE_ASSIGN_OR_RETURN(Table joined, CompletedJoinFor(query.tables));
  return FilterAndAggregate(joined, rewritten);
}

Result<QueryResult> CompletionEngine::ExecuteCompletedSql(
    const std::string& sql) {
  RESTORE_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  return ExecuteCompleted(query);
}

}  // namespace restore
