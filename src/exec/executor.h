#ifndef RESTORE_EXEC_EXECUTOR_H_
#define RESTORE_EXEC_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/query.h"
#include "storage/database.h"

namespace restore {

/// Executes an SPJA query directly against the base tables of `db`
/// (joins along foreign keys, then filters, then grouped aggregation).
/// This is the "classical database" baseline: it does NOT complete missing
/// data. Use restore::CompletionEngine for completed execution.
Result<QueryResult> ExecuteQuery(const Database& db, const Query& query);

/// Parses `sql` and executes it against `db`.
Result<QueryResult> ExecuteSql(const Database& db, const std::string& sql);

}  // namespace restore

#endif  // RESTORE_EXEC_EXECUTOR_H_
