// Reproduces Figure 13 (appendix): confidence intervals on the synthetic
// dataset for ALL removal correlations x keep rates x predictabilities.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/confidence_util.h"
#include "common/string_util.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"

namespace restore {
namespace bench {
namespace {

Result<std::string> MostBiasedValue(const Database& complete,
                                    const Database& incomplete) {
  RESTORE_ASSIGN_OR_RETURN(const Table* truth, complete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Table* partial,
                           incomplete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Column* col, truth->GetColumn("b"));
  std::string worst;
  double worst_dev = -1.0;
  for (size_t code = 0; code < col->dictionary()->size(); ++code) {
    const std::string value =
        col->dictionary()->ValueOf(static_cast<int64_t>(code));
    RESTORE_ASSIGN_OR_RETURN(double tf,
                             CategoricalFraction(*truth, "b", value));
    RESTORE_ASSIGN_OR_RETURN(double pf,
                             CategoricalFraction(*partial, "b", value));
    if (std::abs(tf - pf) > worst_dev) {
      worst_dev = std::abs(tf - pf);
      worst = value;
    }
  }
  return worst;
}

int Run() {
  FigureJson json("fig13");
  std::printf("# Figure 13: confidence intervals, full synthetic grid\n");
  std::printf(
      "removal_correlation,keep_rate,predictability,true_fraction,"
      "ci_lower,ci_upper,theoretical_min,theoretical_max,covered\n");
  const std::vector<double> predictabilities =
      FullGrids() ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                  : std::vector<double>{0.4, 1.0};
  size_t covered = 0;
  size_t total = 0;
  for (double corr : RemovalCorrelations()) {
    for (double keep : KeepRates()) {
      for (double pred : predictabilities) {
        SyntheticConfig config;
        config.num_parents = 250;
        config.predictability = pred;
        config.seed = 910;
        auto complete = GenerateSynthetic(config);
        if (!complete.ok()) continue;
        BiasedRemovalConfig removal;
        removal.table = "table_b";
        removal.column = "b";
        removal.keep_rate = keep;
        removal.removal_correlation = corr;
        removal.seed = 911;
        auto incomplete = ApplyBiasedRemoval(*complete, removal);
        if (!incomplete.ok()) continue;
        if (!ThinTupleFactors(&*incomplete, 0.3, 912).ok()) continue;
        SchemaAnnotation annotation;
        annotation.MarkIncomplete("table_b");
        auto value = MostBiasedValue(*complete, *incomplete);
        if (!value.ok()) continue;
        PathModelConfig model_config;
        model_config.epochs = 8;
        model_config.hidden_dim = 32;
        model_config.embed_dim = 6;
        auto eval = EvaluateCountConfidence(
            *complete, *incomplete, annotation, {"table_a", "table_b"},
            "table_b", "b", *value, model_config, 913);
        if (!eval.ok()) continue;
        const bool hit = eval->true_fraction >= eval->interval.lower - 1e-9 &&
                         eval->true_fraction <= eval->interval.upper + 1e-9;
        covered += hit ? 1 : 0;
        ++total;
        std::printf("%.0f%%,%.0f%%,%.0f%%,%.3f,%.3f,%.3f,%.3f,%.3f,%s\n",
                    corr * 100, keep * 100, pred * 100, eval->true_fraction,
                    eval->interval.lower, eval->interval.upper,
                    eval->interval.theoretical_min,
                    eval->interval.theoretical_max, hit ? "yes" : "no");
        json.Add(StrFormat("corr=%.0f/keep=%.0f/pred=%.0f", corr * 100,
                           keep * 100, pred * 100),
                 {{"true_fraction", eval->true_fraction},
                  {"ci_lower", eval->interval.lower},
                  {"ci_upper", eval->interval.upper},
                  {"covered", hit ? 1.0 : 0.0}});
      }
    }
  }
  std::printf("# coverage: %zu/%zu intervals contain the true fraction\n",
              covered, total);
  json.Add("coverage", {{"covered", static_cast<double>(covered)},
                        {"total", static_cast<double>(total)}});
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
