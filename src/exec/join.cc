#include "exec/join.h"

#include <unordered_map>

#include "common/string_util.h"

namespace restore {

Result<size_t> ResolveColumn(const Table& table, const std::string& name) {
  // Pass 1: exact match.
  for (size_t i = 0; i < table.NumColumns(); ++i) {
    if (table.column(i).name() == name) return i;
  }
  // Pass 2: unique ".<name>" suffix match.
  const std::string suffix = "." + name;
  size_t found = table.NumColumns();
  size_t matches = 0;
  for (size_t i = 0; i < table.NumColumns(); ++i) {
    const std::string& cname = table.column(i).name();
    if (cname.size() > suffix.size() &&
        cname.compare(cname.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::InvalidArgument(
        StrFormat("column reference '%s' is ambiguous", name.c_str()));
  }
  return Status::NotFound(StrFormat("column '%s' not found in '%s'",
                                    name.c_str(), table.name().c_str()));
}

namespace {

/// Rows between cooperative cancellation checks in join scans. Large enough
/// that the clock read disappears in the noise, small enough that a
/// runaway join aborts promptly.
constexpr size_t kJoinCheckStride = 4096;

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col,
                       const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(size_t li, ResolveColumn(left, left_col));
  RESTORE_ASSIGN_OR_RETURN(size_t ri, ResolveColumn(right, right_col));
  const Column& lkey = left.column(li);
  const Column& rkey = right.column(ri);
  if (lkey.type() == ColumnType::kDouble ||
      rkey.type() == ColumnType::kDouble) {
    return Status::InvalidArgument(
        "join keys must be int64 or categorical columns");
  }

  // Build hash table on the right side: key value -> row indices.
  std::unordered_map<int64_t, std::vector<size_t>> build;
  build.reserve(right.NumRows());
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if (r % kJoinCheckStride == 0) {
      RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    }
    const int64_t key = rkey.GetInt64(r);
    if (key == kNullInt64) continue;
    build[key].push_back(r);
  }

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t l = 0; l < left.NumRows(); ++l) {
    if (l % kJoinCheckStride == 0) {
      RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    }
    const int64_t key = lkey.GetInt64(l);
    if (key == kNullInt64) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      left_rows.push_back(l);
      right_rows.push_back(r);
    }
  }

  Table out(left.name() + "_x_" + right.name());
  for (const auto& col : left.columns()) {
    RESTORE_RETURN_IF_ERROR(out.AddColumn(col.Gather(left_rows)));
  }
  for (const auto& col : right.columns()) {
    Column gathered = col.Gather(right_rows);
    if (out.HasColumn(gathered.name())) {
      gathered.set_name(right.name() + "." + gathered.name());
    }
    RESTORE_RETURN_IF_ERROR(out.AddColumn(std::move(gathered)));
  }
  return out;
}

Result<Table> NaturalJoinTables(const Database& db,
                                const std::vector<std::string>& tables,
                                const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> ordered,
                           db.OrderJoinTables(tables));
  RESTORE_ASSIGN_OR_RETURN(const Table* first, db.GetTable(ordered[0]));
  Table joined = *first;
  joined.QualifyColumnNames(ordered[0]);
  std::vector<std::string> placed{ordered[0]};
  for (size_t i = 1; i < ordered.size(); ++i) {
    RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    const std::string& next = ordered[i];
    // Find which placed table `next` connects to.
    ForeignKey fk;
    bool found = false;
    for (const auto& done : placed) {
      auto fk_result = db.FindForeignKey(next, done);
      if (fk_result.ok()) {
        fk = std::move(fk_result).value();
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("table '%s' not connected to previous join tables",
                    next.c_str()));
    }
    RESTORE_ASSIGN_OR_RETURN(const Table* next_table, db.GetTable(next));
    Table right = *next_table;
    right.QualifyColumnNames(next);
    const bool next_is_child = (fk.child_table == next);
    const std::string left_key =
        next_is_child ? fk.parent_table + "." + fk.parent_column
                      : fk.child_table + "." + fk.child_column;
    const std::string right_key = next_is_child
                                      ? next + "." + fk.child_column
                                      : next + "." + fk.parent_column;
    RESTORE_ASSIGN_OR_RETURN(
        joined, HashJoin(joined, right, left_key, right_key, ctx));
    placed.push_back(next);
  }
  joined.set_name(Join(ordered, "_"));
  return joined;
}

}  // namespace restore
