// Reproduces Figure 9: distribution of bias reductions achieved by AR vs
// SSAR models across the completion setups — neither class dominates, which
// motivates model selection (Section 5).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace restore {
namespace bench {
namespace {

struct Summary {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  auto quantile = [&](double q) {
    const double idx = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(values.size() - 1, lo + 1);
    const double frac = idx - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  s.min = values.front();
  s.q25 = quantile(0.25);
  s.median = quantile(0.5);
  s.q75 = quantile(0.75);
  s.max = values.back();
  return s;
}

int Run() {
  FigureJson json("fig9");
  std::printf("# Figure 9: AR vs SSAR bias-reduction distributions\n");
  std::printf("setup,model,min,q25,median,q75,max,n\n");
  const double housing_scale = FullGrids() ? 0.4 : 0.12;
  const double movies_scale = FullGrids() ? 0.3 : 0.08;
  std::vector<CompletionSetup> setups = HousingSetups();
  for (const auto& m : MovieSetups()) setups.push_back(m);
  for (const auto& setup : setups) {
    const double scale =
        setup.dataset == "housing" ? housing_scale : movies_scale;
    const std::vector<double> keeps =
        FullGrids() ? KeepRates() : std::vector<double>{0.5};
    const std::vector<double> corrs =
        FullGrids() ? RemovalCorrelations() : std::vector<double>{0.3, 0.7};
    for (bool ssar : {false, true}) {
      std::vector<double> reductions;
      for (double keep : keeps) {
        for (double corr : corrs) {
          auto run = MakeSetupRun(setup.name, keep, corr, scale, 1200);
          if (!run.ok()) continue;
          auto db = OpenBenchDb(*run, BenchEngineConfig(ssar));
          if (!db.ok()) continue;
          auto path = (*db)->SelectedPathFor(setup.removed_table);
          if (!path.ok()) continue;
          auto eval = EvaluatePath(*run, **db, *path);
          if (!eval.ok()) continue;
          reductions.push_back(eval->bias_reduction);
        }
      }
      const Summary s = Summarize(reductions);
      std::printf("%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%zu\n", setup.name.c_str(),
                  ssar ? "SSAR" : "AR", s.min, s.q25, s.median, s.q75, s.max,
                  reductions.size());
      json.Add(StrFormat("%s/%s", setup.name.c_str(), ssar ? "SSAR" : "AR"),
               {{"min", s.min},
                {"q25", s.q25},
                {"median", s.median},
                {"q75", s.q75},
                {"max", s.max},
                {"n", static_cast<double>(reductions.size())}});
      std::fflush(stdout);
    }
  }
  if (Status st = json.Write(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
