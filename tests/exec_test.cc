// Tests for the query layer: SQL parser, hash join, filters, aggregation.

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/executor.h"
#include "exec/join.h"
#include "exec/query.h"
#include "exec/sql_parser.h"
#include "storage/database.h"

namespace restore {
namespace {

TEST(SqlParserTest, ParsesFullSpjaQuery) {
  auto q = ParseSql(
      "SELECT AVG(price), COUNT(*) FROM landlord NATURAL JOIN apartment "
      "WHERE room_type='Entire home' AND landlord_since >= 2011 "
      "GROUP BY landlord_since, state;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].func, AggregateFunc::kAvg);
  EXPECT_EQ(q->aggregates[0].column, "price");
  EXPECT_EQ(q->aggregates[1].func, AggregateFunc::kCount);
  EXPECT_TRUE(q->aggregates[1].column.empty());
  EXPECT_EQ(q->tables, (std::vector<std::string>{"landlord", "apartment"}));
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_EQ(q->predicates[0].op, CompareOp::kEq);
  EXPECT_EQ(q->predicates[0].literal.string_value(), "Entire home");
  EXPECT_EQ(q->predicates[1].op, CompareOp::kGe);
  EXPECT_EQ(q->predicates[1].literal.int64(), 2011);
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"landlord_since", "state"}));
}

TEST(SqlParserTest, CaseInsensitiveKeywordsAndNoSemicolon) {
  auto q = ParseSql("select sum(x) from t where x != 3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregates[0].func, AggregateFunc::kSum);
  EXPECT_EQ(q->predicates[0].op, CompareOp::kNe);
}

TEST(SqlParserTest, AcceptsDiamondNotEquals) {
  auto q = ParseSql("SELECT COUNT(*) FROM t WHERE a <> 5;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates[0].op, CompareOp::kNe);
}

TEST(SqlParserTest, DoubleAndNegativeLiterals) {
  auto q = ParseSql("SELECT COUNT(*) FROM t WHERE a >= -2 AND b < 3.5;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates[0].literal.int64(), -2);
  EXPECT_DOUBLE_EQ(q->predicates[1].literal.double_value(), 3.5);
}

TEST(SqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseSql("SELECT FROM t;").ok());
  EXPECT_FALSE(ParseSql("SELECT MAX(x) FROM t;").ok());  // unsupported agg
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) t;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE x = ;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE x = 'open;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t trailing;").ok());
}

TEST(QueryTest, ToSqlRoundTripsThroughParser) {
  auto q = ParseSql(
      "SELECT SUM(price) FROM a NATURAL JOIN b WHERE x='y' AND z >= 2 "
      "GROUP BY g;");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseSql(q->ToSql());
  ASSERT_TRUE(q2.ok()) << q2.status() << " for " << q->ToSql();
  EXPECT_EQ(q2->ToSql(), q->ToSql());
}

Database MakeJoinDb() {
  Database db;
  Table parent("parent", {{"id", ColumnType::kInt64},
                          {"grp", ColumnType::kCategorical}});
  EXPECT_TRUE(parent.AppendRow({Value::Int64(1), Value::Categorical("g1")}).ok());
  EXPECT_TRUE(parent.AppendRow({Value::Int64(2), Value::Categorical("g2")}).ok());
  EXPECT_TRUE(parent.AppendRow({Value::Int64(3), Value::Categorical("g1")}).ok());
  Table child("child", {{"id", ColumnType::kInt64},
                        {"parent_id", ColumnType::kInt64},
                        {"v", ColumnType::kDouble}});
  EXPECT_TRUE(
      child.AppendRow({Value::Int64(10), Value::Int64(1), Value::Double(1.0)})
          .ok());
  EXPECT_TRUE(
      child.AppendRow({Value::Int64(11), Value::Int64(1), Value::Double(2.0)})
          .ok());
  EXPECT_TRUE(
      child.AppendRow({Value::Int64(12), Value::Int64(2), Value::Double(4.0)})
          .ok());
  EXPECT_TRUE(
      child.AppendRow({Value::Int64(13), Value::Null(), Value::Double(8.0)})
          .ok());
  EXPECT_TRUE(db.AddTable(std::move(parent)).ok());
  EXPECT_TRUE(db.AddTable(std::move(child)).ok());
  EXPECT_TRUE(db.AddForeignKey("child", "parent_id", "parent", "id").ok());
  return db;
}

TEST(JoinTest, HashJoinMatchesAndSkipsNullKeys) {
  Database db = MakeJoinDb();
  auto joined = NaturalJoinTables(db, {"parent", "child"});
  ASSERT_TRUE(joined.ok()) << joined.status();
  // parent 1 has 2 children, parent 2 has 1, parent 3 none; null FK dropped.
  EXPECT_EQ(joined->NumRows(), 3u);
  EXPECT_TRUE(joined->HasColumn("parent.grp"));
  EXPECT_TRUE(joined->HasColumn("child.v"));
}

TEST(JoinTest, ResolveColumnSuffixMatching) {
  Database db = MakeJoinDb();
  auto joined = NaturalJoinTables(db, {"parent", "child"});
  ASSERT_TRUE(joined.ok());
  auto v = ResolveColumn(*joined, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(joined->column(v.value()).name(), "child.v");
  // "id" matches both parent.id and child.id -> ambiguous.
  EXPECT_FALSE(ResolveColumn(*joined, "id").ok());
  EXPECT_TRUE(ResolveColumn(*joined, "parent.id").ok());
}

TEST(AggregateTest, GroupByWithCountSumAvg) {
  Database db = MakeJoinDb();
  auto result = ExecuteSql(
      db, "SELECT COUNT(*), SUM(v), AVG(v) FROM parent NATURAL JOIN child "
          "GROUP BY grp;");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2u);
  // Schema carries group-by and rendered aggregate names.
  ASSERT_EQ(result->key_columns(), std::vector<std::string>{"grp"});
  const std::vector<std::string> want_values{"COUNT(*)", "SUM(v)", "AVG(v)"};
  ASSERT_EQ(result->value_columns(), want_values);
  const int64_t g1 = result->FindRow({"g1"});
  ASSERT_GE(g1, 0);
  EXPECT_DOUBLE_EQ(result->value(g1, 0), 2.0);
  EXPECT_DOUBLE_EQ(result->value(g1, 1), 3.0);
  EXPECT_DOUBLE_EQ(result->value(g1, 2), 1.5);
  const int64_t g2 = result->FindRow({"g2"});
  ASSERT_GE(g2, 0);
  EXPECT_DOUBLE_EQ(result->value(g2, 0), 1.0);
  EXPECT_DOUBLE_EQ(result->value(g2, 1), 4.0);
}

TEST(AggregateTest, FiltersApplyConjunctively) {
  Database db = MakeJoinDb();
  auto result = ExecuteSql(
      db, "SELECT COUNT(*) FROM parent NATURAL JOIN child "
          "WHERE grp='g1' AND v >= 2;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value(0, 0), 1.0);
}

TEST(AggregateTest, FilterOnAbsentCategoricalValueMatchesNothing) {
  Database db = MakeJoinDb();
  auto result =
      ExecuteSql(db, "SELECT COUNT(*) FROM parent WHERE grp='nope';");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value(0, 0), 0.0);
}

TEST(AggregateTest, SingleTableQueryNeedsNoJoin) {
  Database db = MakeJoinDb();
  auto result = ExecuteSql(db, "SELECT AVG(v) FROM child;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value(0, 0), (1.0 + 2.0 + 4.0 + 8.0) / 4.0);
}

TEST(AggregateTest, CategoricalOrderingComparisonRejected) {
  Database db = MakeJoinDb();
  EXPECT_FALSE(ExecuteSql(db, "SELECT COUNT(*) FROM parent WHERE grp >= 'a';")
                   .ok());
  EXPECT_FALSE(ExecuteSql(db, "SELECT SUM(grp) FROM parent;").ok());
}

TEST(ExecutorTest, ErrorsOnUnknownTable) {
  Database db = MakeJoinDb();
  EXPECT_FALSE(ExecuteSql(db, "SELECT COUNT(*) FROM nope;").ok());
}

}  // namespace
}  // namespace restore
