#ifndef RESTORE_DATAGEN_MOVIES_H_
#define RESTORE_DATAGEN_MOVIES_H_

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace restore {

/// Sizes of the synthetic Movies dataset. The schema reproduces the paper's
/// IMDB-derived topology exactly (Fig 4b): three entity tables linked to
/// movie through three m:n link tables. Default sizes are scaled down from
/// the paper's (movie 250K / actor 2.7M / movie_actor 20M); see DESIGN.md.
struct MoviesConfig {
  size_t num_movies = 3000;
  size_t num_directors = 900;
  size_t num_actors = 2000;
  size_t num_companies = 600;
  double directors_per_movie = 1.3;
  double actors_per_movie = 3.0;
  double companies_per_movie = 1.6;
  uint64_t seed = 13;
};

/// Generates the complete Movies database:
///   movie(id, production_year, genre, country, rating)
///   director(id, birth_year, gender, birth_country)
///   actor(id, birth_year, gender)
///   company(id, country_code, company_type)
///   movie_director(id, movie_id, director_id)
///   movie_actor(id, movie_id, actor_id)
///   movie_company(id, movie_id, company_id)
/// with planted correlations: directors' birth years track their movies'
/// production years, companies' country codes track their movies' countries,
/// genres skew ratings. True tuple factors are attached to every FK parent.
Result<Database> GenerateMovies(const MoviesConfig& config);

}  // namespace restore

#endif  // RESTORE_DATAGEN_MOVIES_H_
