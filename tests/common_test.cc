// Tests for the common substrate: Status/Result, Rng, string utilities.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace restore {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  RESTORE_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPropagation) {
  Result<int> ok = DoublePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = DoublePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedUniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardsSmallIndices) {
  Rng rng(11);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(10, 1.5)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 20000 / 10);  // much more than uniform share
}

TEST(RngTest, ZipfZeroIsUniform) {
  Rng rng(12);
  std::map<size_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[rng.NextZipf(6, 0.0)];
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 5000, 450);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextCategorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, TrimAndLowerAndJoin) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(Join({"a", "b", "c"}, "->"), "a->b->c");
  EXPECT_TRUE(StartsWith("__tf_movie", "__tf_"));
  EXPECT_FALSE(StartsWith("_tf", "__tf_"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

}  // namespace
}  // namespace restore
