#ifndef RESTORE_EXEC_RESULT_SET_H_
#define RESTORE_EXEC_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/exec_control.h"
#include "exec/query.h"

namespace restore {

class ResultSet;

/// A view over one fixed-size row batch of a ResultSet. Cheap to copy;
/// valid as long as the owning ResultSet is alive and unmoved.
struct ResultBatch {
  const ResultSet* set = nullptr;
  size_t begin = 0;  // absolute index of the first row of this batch
  size_t rows = 0;   // rows in this batch (the last batch may be short)

  /// Group-key cell `col` of batch-relative row `row`.
  const std::string& key(size_t row, size_t col) const;
  /// Aggregate cell `col` of batch-relative row `row`.
  double value(size_t row, size_t col) const;
};

/// The result of a completed (or classical) aggregate query: a
/// schema-carrying columnar row set streamed through a fixed-size batch
/// cursor, plus the per-query ExecStats.
///
/// Rows are ordered by group key (lexicographically over the rendered key
/// cells), which is exactly the order the old map-based QueryResult
/// iterated in — so streams, ToString(), and metrics over a ResultSet are
/// bit-identical to the pre-redesign surface. Queries without GROUP BY
/// yield a single row with zero key columns.
///
/// Typical streaming consumption:
///   RESTORE_ASSIGN_OR_RETURN(ResultSet rs, session.Execute(sql, options));
///   ResultBatch batch;
///   while (rs.NextBatch(&batch)) {
///     for (size_t r = 0; r < batch.rows; ++r) Use(batch.value(r, 0));
///   }
class ResultSet {
 public:
  ResultSet() = default;

  /// Builds the columnar set from the aggregation output. `grouped` rows
  /// land in key order (std::map iteration order). `stats` is adopted as
  /// the query's final accounting; `batch_rows` sets the cursor granularity
  /// (clamped to >= 1).
  static ResultSet Build(const Query& query, QueryResult grouped,
                         ExecStats stats, size_t batch_rows);

  // ---- Schema ---------------------------------------------------------------
  /// Group-by column names, in GROUP BY order.
  const std::vector<std::string>& key_columns() const { return key_names_; }
  /// Aggregate column names in SELECT-list order, rendered like
  /// "AVG(apartment.price)".
  const std::vector<std::string>& value_columns() const {
    return value_names_;
  }
  size_t num_rows() const { return num_rows_; }
  size_t num_key_columns() const { return key_names_.size(); }
  size_t num_value_columns() const { return value_names_.size(); }

  // ---- Streaming cursor -----------------------------------------------------
  size_t batch_rows() const { return batch_rows_; }
  /// Fills `*batch` with the next at-most-batch_rows() rows; false at end.
  bool NextBatch(ResultBatch* batch);
  /// Resets the cursor to the first row.
  void Rewind() { cursor_ = 0; }

  // ---- Random access --------------------------------------------------------
  const std::string& key(size_t row, size_t col) const {
    return key_cols_[col][row];
  }
  double value(size_t row, size_t col) const {
    return value_cols_[col][row];
  }
  /// Index of the row whose key cells equal `key`, or -1. Rows are sorted
  /// by key, but result sets are small; linear scan keeps this simple.
  int64_t FindRow(const std::vector<std::string>& key) const;
  /// value(FindRow(key), col), or `fallback` when the group is absent.
  double ValueOr(const std::vector<std::string>& key, size_t col,
                 double fallback) const;

  // ---- Accounting -----------------------------------------------------------
  const ExecStats& stats() const { return stats_; }
  ExecStats* mutable_stats() { return &stats_; }

  // ---- Compatibility --------------------------------------------------------
  /// Materializes the old map-shaped result (copies everything; prefer the
  /// batch cursor or random access on hot paths).
  QueryResult ToQueryResult() const;
  /// Same rendering as the old QueryResult::ToString.
  std::string ToString() const;

  /// DATA equality: row keys and aggregate values, bit for bit. Column
  /// NAMES are excluded (a prepared query renders qualified names where the
  /// same ad-hoc SQL keeps the user's spelling), and so are ExecStats (the
  /// same answer served from cache carries different timings).
  friend bool operator==(const ResultSet& a, const ResultSet& b) {
    return a.key_cols_ == b.key_cols_ && a.value_cols_ == b.value_cols_;
  }
  friend bool operator!=(const ResultSet& a, const ResultSet& b) {
    return !(a == b);
  }

 private:
  std::vector<std::string> key_names_;
  std::vector<std::string> value_names_;
  // Columnar storage: key_cols_[c][r] / value_cols_[c][r].
  std::vector<std::vector<std::string>> key_cols_;
  std::vector<std::vector<double>> value_cols_;
  size_t num_rows_ = 0;
  size_t batch_rows_ = 256;
  size_t cursor_ = 0;
  ExecStats stats_;
};

inline const std::string& ResultBatch::key(size_t row, size_t col) const {
  return set->key(begin + row, col);
}
inline double ResultBatch::value(size_t row, size_t col) const {
  return set->value(begin + row, col);
}

}  // namespace restore

#endif  // RESTORE_EXEC_RESULT_SET_H_
