#include "storage/value.h"

#include "common/string_util.h"

namespace restore {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return StrFormat("%g", double_value());
  return string_value();
}

}  // namespace restore
