#include "exec/aggregate.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "exec/join.h"

namespace restore {

namespace {

/// Rows between cooperative cancellation checks in filter/aggregate scans.
constexpr size_t kAggCheckStride = 4096;

/// Evaluates one predicate for every row, ANDing into `keep`.
Status ApplyPredicate(const Table& table, const Predicate& pred,
                      std::vector<char>* keep, const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(size_t ci, ResolveColumn(table, pred.column));
  const Column& col = table.column(ci);
  const size_t n = table.NumRows();

  if (col.type() == ColumnType::kCategorical) {
    if (!pred.literal.is_string()) {
      return Status::InvalidArgument(
          StrFormat("categorical column '%s' compared to non-string literal",
                    pred.column.c_str()));
    }
    if (pred.op != CompareOp::kEq && pred.op != CompareOp::kNe) {
      return Status::InvalidArgument(
          "categorical columns support only = and !=");
    }
    auto code_result = col.dictionary()->Lookup(pred.literal.string_value());
    // A value absent from the dictionary matches nothing (or everything for
    // !=); that is a valid query, not an error.
    const int64_t code = code_result.ok() ? code_result.value() : kNullInt64 + 1;
    for (size_t r = 0; r < n; ++r) {
      if (r % kAggCheckStride == 0) {
        RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
      }
      if (!(*keep)[r]) continue;
      if (col.IsNull(r)) {
        (*keep)[r] = 0;
        continue;
      }
      const bool eq = col.GetCode(r) == code;
      (*keep)[r] = (pred.op == CompareOp::kEq) ? eq : !eq;
    }
    return Status::OK();
  }

  if (pred.literal.is_string()) {
    return Status::InvalidArgument(
        StrFormat("numeric column '%s' compared to string literal",
                  pred.column.c_str()));
  }
  const double lit = pred.literal.AsDouble();
  for (size_t r = 0; r < n; ++r) {
    if (r % kAggCheckStride == 0) {
      RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    }
    if (!(*keep)[r]) continue;
    if (col.IsNull(r)) {
      (*keep)[r] = 0;
      continue;
    }
    const double v = col.GetNumeric(r);
    bool pass = false;
    switch (pred.op) {
      case CompareOp::kEq:
        pass = v == lit;
        break;
      case CompareOp::kNe:
        pass = v != lit;
        break;
      case CompareOp::kLt:
        pass = v < lit;
        break;
      case CompareOp::kLe:
        pass = v <= lit;
        break;
      case CompareOp::kGt:
        pass = v > lit;
        break;
      case CompareOp::kGe:
        pass = v >= lit;
        break;
    }
    (*keep)[r] = pass;
  }
  return Status::OK();
}

/// Renders a group-by cell for the group key.
std::string RenderCell(const Column& col, size_t row) {
  if (col.IsNull(row)) return "NULL";
  switch (col.type()) {
    case ColumnType::kInt64:
      return std::to_string(col.GetInt64(row));
    case ColumnType::kDouble:
      return StrFormat("%.6g", col.GetDouble(row));
    case ColumnType::kCategorical:
      return col.dictionary()->ValueOf(col.GetCode(row));
  }
  return "";
}

struct AggState {
  double sum = 0.0;
  double count = 0.0;
};

}  // namespace

Result<std::vector<size_t>> FilterRows(
    const Table& table, const std::vector<Predicate>& predicates,
    const ExecContext* ctx) {
  const size_t n = table.NumRows();
  std::vector<char> keep(n, 1);
  for (const auto& pred : predicates) {
    RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    RESTORE_RETURN_IF_ERROR(ApplyPredicate(table, pred, &keep, ctx));
  }
  std::vector<size_t> rows;
  for (size_t r = 0; r < n; ++r) {
    if (keep[r]) rows.push_back(r);
  }
  return rows;
}

Result<QueryResult> Aggregate(const Table& table,
                              const std::vector<size_t>& rows,
                              const Query& query, const ExecContext* ctx) {
  // Resolve group-by and aggregate columns once.
  std::vector<const Column*> group_cols;
  for (const auto& g : query.group_by) {
    RESTORE_ASSIGN_OR_RETURN(size_t ci, ResolveColumn(table, g));
    group_cols.push_back(&table.column(ci));
  }
  std::vector<const Column*> agg_cols;
  for (const auto& agg : query.aggregates) {
    if (agg.column.empty()) {
      agg_cols.push_back(nullptr);  // COUNT(*)
      continue;
    }
    RESTORE_ASSIGN_OR_RETURN(size_t ci, ResolveColumn(table, agg.column));
    const Column* col = &table.column(ci);
    if (agg.func != AggregateFunc::kCount && !col->is_numeric()) {
      return Status::InvalidArgument(
          StrFormat("%s over categorical column '%s'",
                    AggregateFuncName(agg.func), agg.column.c_str()));
    }
    agg_cols.push_back(col);
  }

  std::map<std::vector<std::string>, std::vector<AggState>> states;
  if (query.group_by.empty()) {
    // SQL semantics: an aggregate query without GROUP BY always yields one
    // row, even over an empty input (COUNT = 0, SUM = 0).
    states.try_emplace(std::vector<std::string>{}, query.aggregates.size());
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i % kAggCheckStride == 0) {
      RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    }
    const size_t r = rows[i];
    std::vector<std::string> key;
    key.reserve(group_cols.size());
    for (const Column* gc : group_cols) key.push_back(RenderCell(*gc, r));
    auto [it, inserted] =
        states.try_emplace(std::move(key), query.aggregates.size());
    auto& state = it->second;
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Column* col = agg_cols[a];
      if (col == nullptr) {
        state[a].count += 1.0;  // COUNT(*)
        continue;
      }
      if (col->IsNull(r)) continue;  // SQL semantics: NULLs ignored
      state[a].count += 1.0;
      if (col->is_numeric()) state[a].sum += col->GetNumeric(r);
    }
  }

  QueryResult result;
  for (auto& [key, state] : states) {
    std::vector<double> values(query.aggregates.size(), 0.0);
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      switch (query.aggregates[a].func) {
        case AggregateFunc::kCount:
          values[a] = state[a].count;
          break;
        case AggregateFunc::kSum:
          values[a] = state[a].sum;
          break;
        case AggregateFunc::kAvg:
          values[a] =
              state[a].count > 0 ? state[a].sum / state[a].count : 0.0;
          break;
      }
    }
    result.groups.emplace(key, std::move(values));
  }
  return result;
}

Result<QueryResult> FilterAndAggregate(const Table& table,
                                       const Query& query,
                                       const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                           FilterRows(table, query.predicates, ctx));
  return Aggregate(table, rows, query, ctx);
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  for (const auto& [key, values] : groups) {
    os << "(";
    for (size_t i = 0; i < key.size(); ++i) {
      if (i > 0) os << ", ";
      os << key[i];
    }
    os << ") -> [";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ", ";
      os << StrFormat("%.6g", values[i]);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace restore
