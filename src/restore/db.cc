#include "restore/db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/fault_injection.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "exec/join.h"
#include "exec/sql_parser.h"

namespace restore {

namespace {

// Model-persistence framing (see common/serialize.h). Bump the version of
// whichever payload layout changes; readers reject other versions.
// Manifest v2 prepended the engine-config fingerprint (v1 had none); v3 adds
// per-model generation metadata (generation number, rows at training time,
// training seconds) for the generational model_dir layout; v4 appends each
// model's training-time drift reference summaries (per-column bounded
// histograms). Older manifests still load — a v3 model simply reports drift
// as unavailable, it never fails the open.
// kManifestMagic / kManifestVersion are exported from db.h (tests derive
// their parsing bounds from them); the rest stays private to this file.
constexpr uint32_t kModelMagic = 0x4f545352;     // "RSTO"
constexpr uint32_t kCurrentMagic = 0x43545352;   // "RSTC"
constexpr uint32_t kModelVersion = 1;
constexpr uint32_t kCurrentVersion = 1;
constexpr const char kManifestName[] = "restore_models.manifest";
constexpr const char kCurrentName[] = "CURRENT";
// Generations retained in a path's in-memory entry chain for queries pinned
// at older epochs. Queries pin an epoch only for their own lifetime, so a
// handful is plenty; anything older resolves to the oldest retained one.
constexpr int kMaxChainedGens = 4;

std::string ModelFileName(const std::string& path_key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(path_key)));
  return StrFormat("model_%s.rsm", buf);
}

std::string GenDirName(uint64_t generation) {
  return StrFormat("gen-%06llu",
                   static_cast<unsigned long long>(generation));
}

Status MakeDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::InvalidArgument(
      StrFormat("cannot create model directory '%s'", dir.c_str()));
}

/// Best-effort recursive delete (retiring old generations / crashed tmp
/// dirs must never fail a save that already published its data).
void RemoveDirRecursive(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveDirRecursive(path);
    } else {
      std::remove(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

/// Generation numbers present as complete `gen-NNNNNN` directories (tmp
/// staging dirs excluded), sorted ascending.
std::vector<uint64_t> ListGenerations(const std::string& dir) {
  std::vector<uint64_t> gens;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return gens;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    unsigned long long gen = 0;
    if (std::sscanf(name.c_str(), "gen-%llu", &gen) != 1) continue;
    if (name != GenDirName(gen)) continue;  // rejects gen-*.tmp and padding
    gens.push_back(gen);
  }
  ::closedir(d);
  std::sort(gens.begin(), gens.end());
  return gens;
}

/// Removes staging directories a crashed save left behind.
void RemoveStaleTmpDirs(const std::string& dir) {
  std::vector<std::string> stale;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 8 && name.compare(0, 4, "gen-") == 0 &&
        name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  for (const auto& path : stale) RemoveDirRecursive(path);
}

Result<uint64_t> ReadCurrentGeneration(const std::string& dir) {
  RESTORE_ASSIGN_OR_RETURN(
      std::string payload,
      ReadChecksummedFile(dir + "/" + kCurrentName, kCurrentMagic,
                          kCurrentVersion));
  BinaryReader r(std::move(payload));
  const uint64_t gen = r.U64();
  RESTORE_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd() || gen == 0) {
    return Status::InvalidArgument(
        StrFormat("'%s/%s' is malformed", dir.c_str(), kCurrentName));
  }
  return gen;
}

uint64_t TotalPathRows(const Database& db, const std::vector<std::string>& path) {
  uint64_t rows = 0;
  for (const auto& t : path) {
    Result<const Table*> table = db.GetTable(t);
    if (table.ok()) rows += (*table)->NumRows();
  }
  return rows;
}

}  // namespace

uint64_t EngineConfigFingerprint(const EngineConfig& config) {
  // Serialize every model hyperparameter in a fixed order and hash the
  // bytes. The per-path training seeds are derived from config.seed, so the
  // engine seed participates, and the selection strategy does too (the
  // manifest persists per-target path selections, which are that strategy's
  // output). Cache settings do not change what is persisted and stay out.
  BinaryWriter w;
  const PathModelConfig& m = config.model;
  w.I32(m.max_bins);
  w.I32(m.tf_cap);
  w.U64(m.embed_dim);
  w.U64(m.hidden_dim);
  w.U64(m.num_layers);
  w.Bool(m.use_ssar);
  w.U64(m.phi_dim);
  w.U64(m.context_dim);
  w.U64(m.max_children);
  w.U64(m.epochs);
  w.U64(m.batch_size);
  w.F32(m.learning_rate);
  w.U64(m.min_train_steps);
  w.F64(m.test_fraction);
  w.U64(m.max_train_rows);
  w.U64(config.max_path_len);
  w.U64(config.max_candidates);
  w.U64(static_cast<uint64_t>(config.selection));
  w.U64(config.seed);
  return Fnv1a64(w.buffer());
}

Result<std::string> CurrentModelGenerationDir(const std::string& model_dir) {
  Result<uint64_t> current = ReadCurrentGeneration(model_dir);
  if (current.ok()) return model_dir + "/" + GenDirName(current.value());
  const std::vector<uint64_t> gens = ListGenerations(model_dir);
  if (gens.empty()) {
    return Status::NotFound(StrFormat(
        "'%s' holds no generational model snapshot", model_dir.c_str()));
  }
  return model_dir + "/" + GenDirName(gens.back());
}

Db::Db(const Database* database, SchemaAnnotation annotation,
       EngineConfig config)
    : database_(database),
      annotation_(std::move(annotation)),
      config_(std::move(config)),
      cache_(config_.cache_budget_bytes),
      // Non-owning alias: until the first Append, the published snapshot IS
      // the caller's database — the frozen path copies nothing.
      data_(std::shared_ptr<const Database>(), database) {}

Db::~Db() { StopRefresher(); }

std::string Db::PathKey(const std::vector<std::string>& path) {
  return Join(path, "->");
}

Result<std::shared_ptr<Db>> Db::Open(const Database* database,
                                     SchemaAnnotation annotation,
                                     DbOptions options) {
  RESTORE_RETURN_IF_ERROR(annotation.Validate(*database));
  std::shared_ptr<Db> db(
      new Db(database, std::move(annotation), std::move(options.engine)));
  db->refresh_policy_ = options.refresh;
  db->keep_generations_ =
      options.keep_generations == 0 ? 1 : options.keep_generations;
  for (const auto& target : db->annotation_.incomplete_tables()) {
    std::vector<std::vector<std::string>> paths = EnumerateCompletionPaths(
        *database, db->annotation_, target, db->config_.max_path_len);
    if (paths.empty()) {
      return Status::FailedPrecondition(
          StrFormat("no completion path for incomplete table '%s'",
                    target.c_str()));
    }
    if (paths.size() > db->config_.max_candidates) {
      paths.resize(db->config_.max_candidates);
    }
    db->candidates_[target] = std::move(paths);
    db->selected_[target] = std::make_shared<SelectionEntry>();
  }
  // Stable per-path training seeds, assigned in enumeration order. These
  // reproduce the seeds sequential training historically used, but are a
  // pure function of the schema — never of request order — so concurrent
  // and restarted servers train identical models.
  uint64_t next = 1;
  for (const auto& [target, paths] : db->candidates_) {
    (void)target;
    for (const auto& path : paths) {
      const std::string key = PathKey(path);
      if (db->path_seeds_.count(key) == 0) {
        db->path_seeds_[key] = db->config_.seed + next++;
      }
    }
  }
  if (!options.model_dir.empty()) {
    RESTORE_RETURN_IF_ERROR(
        db->LoadModels(options.model_dir, options.model_generation));
  }
  if (db->refresh_policy_.enabled()) {
    // Dedicated threads, NOT the shared ThreadPool: at pool width 1 the
    // pool runs tasks inline on the submitter, which would stall queries
    // behind retraining — the exact thing background refresh must avoid.
    db->refresh_threads_.reserve(db->refresh_policy_.max_concurrent_retrains);
    for (size_t i = 0; i < db->refresh_policy_.max_concurrent_retrains; ++i) {
      db->refresh_threads_.emplace_back(
          [raw = db.get()] { raw->RefreshWorkerLoop(); });
    }
  }
  return db;
}

Session Db::CreateSession() { return Session(shared_from_this()); }

std::shared_ptr<const Database> Db::data() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  return data_;
}

uint64_t Db::SeedForPath(const std::string& key) const {
  auto it = path_seeds_.find(key);
  if (it != path_seeds_.end()) return it->second;
  // Ad-hoc path outside the candidate registry: hash the key into a seed
  // disjoint from the compact candidate indices.
  return config_.seed + 1000003 + (Fnv1a64(key) % 1000000007ull);
}

uint64_t Db::GenerationSeed(const std::string& key,
                            uint64_t generation) const {
  // Generation 1 must be EXACTLY the historical seed (frozen-database
  // bit-reproducibility); later generations fold the generation number in
  // so a refresh explores a fresh optimization trajectory while remaining a
  // pure function of (path, generation).
  return SeedForPath(key) ^ ((generation - 1) * 0x9e3779b97f4a7c15ull);
}

uint64_t Db::CompletionSeed(const std::string& key) const {
  return config_.seed ^ (Fnv1a64(key) | 1ull);
}

std::shared_ptr<Db::ModelEntry> Db::EntryFor(
    const std::string& key, const std::vector<std::string>& path) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::shared_ptr<ModelEntry>& slot = models_[key];
  if (slot == nullptr) {
    slot = std::make_shared<ModelEntry>();
    slot->path = path;
  }
  return slot;
}

std::shared_ptr<const Db::EpochPin> Db::PinnedEpoch(
    const ExecContext* ctx) const {
  if (ctx != nullptr) {
    auto pinned =
        std::static_pointer_cast<const EpochPin>(ctx->GetPin("epoch"));
    if (pinned != nullptr) return pinned;
  }
  auto pin = std::make_shared<EpochPin>();
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    pin->data = data_;
    pin->epoch = epoch_.load(std::memory_order_relaxed);
  }
  if (ctx != nullptr) ctx->SetPin("epoch", pin);
  return pin;
}

uint64_t Db::IngestMarkLocked(const std::vector<std::string>& path) const {
  uint64_t mark = 0;
  for (const auto& t : path) {
    auto it = ingested_rows_by_table_.find(t);
    if (it != ingested_rows_by_table_.end()) mark += it->second;
  }
  return mark;
}

Result<std::shared_ptr<const PathModel>> Db::ModelForPath(
    const std::vector<std::string>& path, const ExecContext* ctx) {
  // Cancellation is honored BEFORE the latch, never inside it: the latch
  // caches a failure permanently, so letting one caller's cancel fail the
  // training run would poison the model for every other session.
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  if (ctx != nullptr && ctx->stats() != nullptr) {
    ++ctx->stats()->models_consulted;
  }
  const std::string key = PathKey(path);
  const std::string pin_key = "model:" + key;
  if (ctx != nullptr) {
    auto pinned =
        std::static_pointer_cast<const PathModel>(ctx->GetPin(pin_key));
    if (pinned != nullptr) return pinned;
  }
  const std::shared_ptr<const EpochPin> pin = PinnedEpoch(ctx);
  std::shared_ptr<ModelEntry> entry = EntryFor(key, path);
  // Resolve the generation visible at the query's pinned epoch: a hot swap
  // published after the pin must stay invisible to this query, so walk back
  // to the newest generation published at-or-before it. First trainings and
  // loaded models publish at epoch 0 and are visible to everyone. The walk
  // holds registry_mu_ because capping the chain on refresh rewrites the
  // `prev` of a reachable entry under the same mutex (chain is at most
  // kMaxChainedGens nodes, so the critical section is tiny).
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    while (entry->publish_epoch > pin->epoch && entry->prev != nullptr) {
      entry = entry->prev;
    }
  }
  // Circuit breaker — consulted only when this path has no good generation
  // to serve (untrained, training, or a cached failure): while open, fail
  // fast with kUnavailable instead of replaying the cached error or piling
  // onto a failing training path; once the half-open window is reached, a
  // cached failure gets a FRESH latch so the probe actually retrains (the
  // latch still collapses a probe herd to exactly one training run).
  if (!entry->latch.done_ok()) {
    switch (DecideBreaker(key)) {
      case BreakerDecision::kClosed:
        break;
      case BreakerDecision::kFailFast:
        return Status::Unavailable(StrFormat(
            "circuit breaker open for path '%s' (no good generation to "
            "serve)",
            key.c_str()));
      case BreakerDecision::kProbe: {
        std::lock_guard<std::mutex> lock(registry_mu_);
        auto it = models_.find(key);
        if (it != models_.end()) {
          if (it->second->latch.done() && !it->second->latch.done_ok()) {
            auto probe = std::make_shared<ModelEntry>();
            probe->path = it->second->path;
            probe->generation = it->second->generation;  // retry, not refresh
            probe->publish_epoch = it->second->publish_epoch;
            probe->prev = it->second->prev;
            it->second = probe;
          }
          entry = it->second;
        }
        break;
      }
    }
  }
  // A deadline-carrying WAITER may abandon the wait with DeadlineExceeded;
  // the first-touch training itself always runs to completion and stays
  // shareable (one caller's deadline must never poison the model).
  const auto deadline = ctx != nullptr
                            ? ctx->deadline()
                            : std::chrono::steady_clock::time_point::max();
  Status s = entry->latch.RunOnceWithDeadline([&]() -> Status {
    if (FaultInjection::Enabled()) {
      Status fault = FaultInjection::Fire("train.path");
      if (!fault.ok()) {
        RecordTrainingResult(key, fault);
        return fault;
      }
    }
    // First touch trains on the NEWEST snapshot, not the caller's pin: the
    // run defines this generation for every session, so it uses the freshest
    // data and records the staleness baseline it was trained against.
    std::shared_ptr<const Database> snapshot;
    uint64_t mark = 0;
    {
      std::lock_guard<std::mutex> lock(data_mu_);
      snapshot = data_;
      mark = IngestMarkLocked(path);
    }
    PathModelConfig cfg = config_.model;
    cfg.seed = GenerationSeed(key, entry->generation);
    Result<std::unique_ptr<PathModel>> trained =
        PathModel::Train(*snapshot, annotation_, path, cfg);
    if (!trained.ok()) {
      RecordTrainingResult(key, trained.status());
      return trained.status();
    }
    RecordTrainingResult(key, Status::OK());
    entry->model =
        std::shared_ptr<const PathModel>(std::move(trained).value());
    entry->ingest_mark = mark;
    entry->rows_at_train = TotalPathRows(*snapshot, path);
    // Drift reference: bounded per-column summaries of the snapshot this
    // generation was trained on, taken while the training data is already
    // hot in cache. Scoring happens only in the refresher/Freshness paths,
    // so the frozen query path stays bit-identical.
    entry->drift_ref = SummarizeTables(*snapshot, path);
    entry->train_seconds = entry->model->train_seconds();
    models_trained_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_train_seconds_ += entry->train_seconds;
    return Status::OK();
  }, deadline);
  if (!s.ok()) return s;
  std::shared_ptr<const PathModel> model = entry->model;
  if (ctx != nullptr) ctx->SetPin(pin_key, model);
  return model;
}

double Db::total_train_seconds() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_train_seconds_;
}

Result<std::vector<Db::Candidate>> Db::CandidatesFor(
    const std::string& target, const ExecContext* ctx) {
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  auto it = candidates_.find(target);
  if (it == candidates_.end()) {
    return Status::NotFound(StrFormat(
        "no candidates for '%s' (not an incomplete table of this Db)",
        target.c_str()));
  }
  const std::vector<std::vector<std::string>>& paths = it->second;
  // Candidate models are independent: train the missing ones concurrently on
  // the shared pool. Each path's once-latch guarantees a single training run
  // even if another session races us on the same candidate. The ctx is NOT
  // threaded into the shards (its stats/progress are single-threaded by
  // contract); instead the query's cancel flag skips still-unclaimed
  // training shards, and the check below turns that into Cancelled.
  std::vector<Status> errors(paths.size(), Status::OK());
  ThreadPool::Global().ParallelFor(
      0, paths.size(), 1,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          errors[i] = ModelForPath(paths[i]).status();
        }
      },
      ctx != nullptr ? ctx->cancel_flag() : nullptr);
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  std::vector<Candidate> out;
  out.reserve(paths.size());
  for (const auto& path : paths) {
    RESTORE_ASSIGN_OR_RETURN(std::shared_ptr<const PathModel> model,
                             ModelForPath(path, ctx));
    out.push_back({path, std::move(model)});
  }
  return out;
}

Result<std::vector<std::string>> Db::SelectedPathFor(
    const std::string& target, const ExecContext* ctx) {
  // Path-selection cost is accounted separately from sampling: the caller's
  // sample timer (ExecuteCompletedImpl) subtracts what accrues here, so
  // ExecStats.selection_seconds vs sample_seconds cleanly split the
  // completion pipeline. First touch pays candidate training + the probe
  // sweep behind the shared latch; later queries only the map lookup.
  Timer selection_timer;
  ExecStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
  struct SelectionTimerGuard {
    Timer& timer;
    ExecStats* stats;
    ~SelectionTimerGuard() {
      if (stats != nullptr) {
        stats->selection_seconds += timer.ElapsedSeconds();
      }
    }
  } guard{selection_timer, stats};
  // Selection (like training) runs under a shared once-latch, so it is
  // checked before but never aborted inside — a cancelled caller must not
  // cache a Cancelled selection for everyone else.
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  std::shared_ptr<SelectionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = selected_.find(target);
    if (it == selected_.end()) {
      return Status::NotFound(StrFormat(
          "no selection for '%s' (not an incomplete table of this Db)",
          target.c_str()));
    }
    entry = it->second;
  }
  // As with model training: only the WAIT is deadline-bounded; the shared
  // selection run itself completes and stays cached for everyone.
  const auto deadline = ctx != nullptr
                            ? ctx->deadline()
                            : std::chrono::steady_clock::time_point::max();
  Status s = entry->latch.RunOnceWithDeadline([&]() -> Status {
    Result<std::vector<Candidate>> cands = CandidatesFor(target);
    if (!cands.ok()) return cands.status();
    if (cands->empty()) {
      return Status::FailedPrecondition(
          StrFormat("no trained candidates for '%s'", target.c_str()));
    }
    std::vector<std::vector<std::string>> paths;
    std::vector<const PathModel*> models;
    for (const auto& c : *cands) {
      paths.push_back(c.path);
      models.push_back(c.model.get());
    }
    std::shared_ptr<const Database> snapshot;
    {
      std::lock_guard<std::mutex> lock(data_mu_);
      snapshot = data_;
    }
    PathModelConfig probe = config_.model;
    probe.epochs = std::max<size_t>(2, probe.epochs / 3);
    Result<size_t> best =
        SelectPath(*snapshot, annotation_, target, paths, models,
                   config_.selection, probe, /*holdout_fraction=*/0.3,
                   config_.seed + 7);
    if (!best.ok()) return best.status();
    entry->path = paths[best.value()];
    return Status::OK();
  }, deadline);
  if (!s.ok()) {
    // Unlike training failures (cached per-path, gated by the circuit
    // breaker), a failed selection is never cached: swap in a fresh entry so
    // the next query retries. The retry is cheap — it re-walks the cached
    // per-path outcomes, so it fails fast (or fail-fasts on an open breaker
    // with kUnavailable) until a candidate actually recovers. Deadline and
    // cancel are the caller abandoning the WAIT, not a selection outcome:
    // the shared run is still in flight, so the entry must stay.
    if (!s.IsDeadlineExceeded() && !s.IsCancelled()) {
      std::lock_guard<std::mutex> lock(registry_mu_);
      auto it = selected_.find(target);
      if (it != selected_.end() && it->second == entry) {
        it->second = std::make_shared<SelectionEntry>();
      }
    }
    return s;
  }
  return entry->path;
}

Result<CompletionResult> Db::CompleteViaPath(
    const std::vector<std::string>& path, const CompletionOptions& options,
    const ExecContext* ctx) {
  // External callers without a context still get a consistent epoch: every
  // resource of this ONE completion resolves through the same local pin.
  ExecContext local(nullptr, nullptr);
  const ExecContext* use = ctx != nullptr ? ctx : &local;
  RESTORE_ASSIGN_OR_RETURN(std::shared_ptr<const PathModel> model,
                           ModelForPath(path, use));
  const std::shared_ptr<const EpochPin> pin = PinnedEpoch(use);
  // The synthesis RNG is derived from the path so a completion is a pure
  // function of (db, models, path) — concurrent sessions and restarted
  // processes produce bit-identical synthesized data.
  Rng rng(CompletionSeed(PathKey(path)));
  IncompletenessJoinExecutor exec(pin->data.get(), &annotation_);
  return exec.CompletePathJoin(*model, rng, options, ctx);
}

Result<Table> Db::CompleteTable(const std::string& target,
                                const ExecContext* ctx) {
  ExecContext local(nullptr, nullptr);
  const ExecContext* use = ctx != nullptr ? ctx : &local;
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> path,
                           SelectedPathFor(target, use));
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(path, CompletionOptions(), use));
  const std::shared_ptr<const EpochPin> pin = PinnedEpoch(use);
  RESTORE_ASSIGN_OR_RETURN(const Table* base, pin->data->GetTable(target));

  // Completed table = existing tuples + synthesized tuples (attr columns;
  // key columns of synthesized tuples are NULL).
  Table out(target);
  auto it = completion.synthesized.find(target);
  for (const auto& col : base->columns()) {
    Column merged = col;
    if (it != completion.synthesized.end()) {
      const Column* synth = nullptr;
      for (const auto& sc : it->second) {
        if (sc.name() == col.name()) {
          synth = &sc;
          break;
        }
      }
      const size_t n = it->second.empty() ? 0 : it->second.front().size();
      for (size_t r = 0; r < n; ++r) {
        if (synth == nullptr) {
          merged.AppendNull();
        } else if (synth->type() == ColumnType::kDouble) {
          merged.AppendDouble(synth->GetDouble(r));
        } else {
          merged.AppendInt64(synth->GetInt64(r));
        }
      }
    }
    RESTORE_RETURN_IF_ERROR(out.AddColumn(std::move(merged)));
  }
  return out;
}

Result<std::shared_ptr<const Table>> Db::CompletedJoinFor(
    const std::vector<std::string>& tables, const ExecContext* ctx) {
  // Per-query cache policy: kBypass neither reads nor writes, kReadOnly
  // reads without inserting; both are further gated by the engine-level
  // enable_cache switch.
  const CachePolicy policy =
      ctx != nullptr ? ctx->cache_policy() : CachePolicy::kDefault;
  const bool cache_read =
      config_.enable_cache && policy != CachePolicy::kBypass;
  const bool cache_write =
      config_.enable_cache && policy == CachePolicy::kDefault;
  ExecStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
  const auto note_lookup = [stats](bool hit) {
    if (stats == nullptr) return;
    if (hit) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
    }
  };
  // Cache entries are keyed by the pinned epoch: a hot swap (ingest or
  // model refresh) bumps the Db epoch, making every pre-swap completion
  // unreachable to post-swap queries — and entries a pinned in-flight query
  // writes under its OLD epoch are equally unreachable. Epoch 0 (frozen Db)
  // keeps the historical keys bit for bit.
  const std::shared_ptr<const EpochPin> pin = PinnedEpoch(ctx);
  const uint64_t epoch = pin->epoch;
  const Database& snapshot = *pin->data;

  // Single incomplete table: answer from the completed TABLE rather than a
  // completed path join — the path necessarily enters through a fan-out
  // (e.g. a link table), which would count each target tuple once per link.
  if (tables.size() == 1 && annotation_.IsIncomplete(tables[0])) {
    // Exact-match caching only: projecting a cached superset join would
    // change tuple multiplicities.
    const std::set<std::string> key{tables[0]};
    if (cache_read) {
      std::shared_ptr<const Table> cached = cache_.GetExact(key, epoch);
      note_lookup(cached != nullptr);
      if (cached != nullptr) return cached;
    }
    RESTORE_ASSIGN_OR_RETURN(Table completed, CompleteTable(tables[0], ctx));
    completed.QualifyColumnNames(tables[0]);
    auto result = std::make_shared<const Table>(std::move(completed));
    if (cache_write) cache_.Put(key, result, epoch);
    return result;
  }
  std::set<std::string> table_set(tables.begin(), tables.end());
  if (cache_read) {
    std::shared_ptr<const Table> cached =
        cache_.GetCovering(table_set, epoch);
    note_lookup(cached != nullptr);
    if (cached != nullptr) return cached;
  }

  // Incomplete tables among the requested join.
  std::vector<std::string> incomplete;
  for (const auto& t : tables) {
    if (annotation_.IsIncomplete(t)) incomplete.push_back(t);
  }
  if (incomplete.empty()) {
    RESTORE_ASSIGN_OR_RETURN(Table joined,
                             NaturalJoinTables(snapshot, tables, ctx));
    return std::make_shared<const Table>(std::move(joined));
  }

  // Build the extended completion path: a completion path for the primary
  // incomplete table, then any remaining query tables appended in FK-
  // connected order. The walk completes every incomplete table it crosses.
  //
  // Path choice is query-aware: a fan-out hop into a table OUTSIDE the query
  // multiplies the join rows of the answer (Section 4.4 would require
  // reweighting), so candidates are ranked first by how few off-query
  // fan-out hops they introduce, then by the configured selection strategy.
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> selected,
                           SelectedPathFor(incomplete[0], ctx));
  // The query-aware re-ranking below is selection work too (it can override
  // the cached per-table choice), so it lands in selection_seconds.
  Timer ranking_timer;
  RESTORE_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                           CandidatesFor(incomplete[0], ctx));
  auto fanout_penalty = [&](const std::vector<std::string>& p) {
    size_t penalty = 0;
    for (size_t k = 0; k + 1 < p.size(); ++k) {
      auto fan = snapshot.IsFanOut(p[k], p[k + 1]);
      const bool off_query =
          std::find(tables.begin(), tables.end(), p[k + 1]) == tables.end();
      if (fan.ok() && fan.value() && off_query) ++penalty;
    }
    return penalty;
  };
  std::vector<std::string> path = selected;
  size_t best_penalty = fanout_penalty(selected);
  for (const auto& cand : cands) {
    const size_t penalty = fanout_penalty(cand.path);
    if (penalty < best_penalty) {
      best_penalty = penalty;
      path = cand.path;
    }
  }
  if (stats != nullptr) {
    stats->selection_seconds += ranking_timer.ElapsedSeconds();
  }
  std::vector<std::string> extended = path;
  std::set<std::string> placed(path.begin(), path.end());
  std::set<std::string> remaining;
  for (const auto& t : tables) {
    if (placed.count(t) == 0) remaining.insert(t);
  }
  while (!remaining.empty()) {
    bool progress = false;
    // Prefer a table connected to the LAST path table (a proper walk), else
    // any connected table.
    for (const auto& cand : remaining) {
      if (snapshot.FindForeignKey(extended.back(), cand).ok()) {
        extended.push_back(cand);
        placed.insert(cand);
        remaining.erase(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (const auto& cand : remaining) {
      bool connected = false;
      for (const auto& done : placed) {
        if (snapshot.FindForeignKey(cand, done).ok()) {
          connected = true;
          break;
        }
      }
      if (connected) {
        return Status::Unimplemented(
            StrFormat("query table '%s' is not FK-adjacent to the completion "
                      "path tail; bushy completion plans are not supported",
                      cand.c_str()));
      }
      return Status::InvalidArgument(
          StrFormat("query table '%s' is not connected", cand.c_str()));
    }
  }

  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(extended, CompletionOptions(),
                                           ctx));
  auto result = std::make_shared<const Table>(std::move(completion.joined));
  if (cache_write) {
    std::set<std::string> covered(extended.begin(), extended.end());
    cache_.Put(covered, result, epoch);
  }
  return result;
}

Result<ResultSet> Db::ExecuteCompletedImpl(const Query& query,
                                           const QueryOptions& options,
                                           ExecStats stats) {
  ExecContext ctx(&options, &stats);
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    RESTORE_RETURN_IF_ERROR(ctx.Check());
    if (query.tables.empty() || query.aggregates.empty()) {
      return Status::InvalidArgument("malformed query");
    }
    RESTORE_RETURN_IF_ERROR(CheckFullyBound(query));
    // Pin the epoch before the first data touch: everything this query
    // reads — base tables, models, cache entries — resolves against this
    // one snapshot even if ingestion or a model swap lands mid-flight.
    const std::shared_ptr<const EpochPin> pin = PinnedEpoch(&ctx);
    // Rewrite column references to be table-qualified w.r.t. the query
    // tables so that evidence tables pulled in by the completion path cannot
    // make them ambiguous. Idempotent for pre-qualified prepared queries.
    Timer plan_timer;
    Query rewritten = query;
    RESTORE_RETURN_IF_ERROR(QualifyQueryColumns(*pin->data, &rewritten));
    stats.plan_seconds += plan_timer.ElapsedSeconds();
    // The sample timer brackets the whole completed-join build; whatever
    // path-selection time accrued inside (SelectedPathFor + the query-aware
    // re-ranking) is subtracted so selection_seconds and sample_seconds
    // partition the pipeline instead of double-counting.
    const double selection_before = stats.selection_seconds;
    Timer sample_timer;
    RESTORE_ASSIGN_OR_RETURN(std::shared_ptr<const Table> joined,
                             CompletedJoinFor(query.tables, &ctx));
    const double sampled = sample_timer.ElapsedSeconds() -
                           (stats.selection_seconds - selection_before);
    stats.sample_seconds += sampled > 0.0 ? sampled : 0.0;
    Timer agg_timer;
    RESTORE_ASSIGN_OR_RETURN(QueryResult grouped,
                             FilterAndAggregate(*joined, rewritten, &ctx));
    stats.aggregate_seconds += agg_timer.ElapsedSeconds();
    // Schema names come from the ORIGINAL query, so prepared and ad-hoc
    // runs of the same SQL carry identical column names.
    return ResultSet::Build(query, std::move(grouped), stats,
                            ctx.batch_rows());
  }();
  RecordQuery(stats, result.status());
  return result;
}

Result<ResultSet> Db::ExecuteCompleted(const Query& query,
                                       const QueryOptions& options) {
  return ExecuteCompletedImpl(query, options, ExecStats());
}

Result<ResultSet> Db::ExecuteCompletedSql(const std::string& sql,
                                          const QueryOptions& options) {
  ExecStats stats;
  {
    // Cancel-before-parse: a dead query never pays for parsing.
    ExecContext ctx(&options, &stats);
    Status s = ctx.Check();
    if (!s.ok()) {
      RecordQuery(stats, s);
      return s;
    }
  }
  Timer parse_timer;
  Result<Query> query = ParseSql(sql);
  stats.parse_seconds = parse_timer.ElapsedSeconds();
  if (!query.ok()) {
    RecordQuery(stats, query.status());
    return query.status();
  }
  return ExecuteCompletedImpl(*query, options, std::move(stats));
}

void Db::RecordQuery(const ExecStats& stats, const Status& status) {
  std::lock_guard<std::mutex> lock(query_stats_mu_);
  if (status.ok()) {
    ++query_stats_.queries_ok;
  } else if (status.IsCancelled()) {
    ++query_stats_.queries_cancelled;
  } else if (status.IsDeadlineExceeded()) {
    ++query_stats_.queries_deadline_exceeded;
  } else {
    ++query_stats_.queries_failed;
  }
  ExecStats& t = query_stats_.totals;
  t.parse_seconds += stats.parse_seconds;
  t.plan_seconds += stats.plan_seconds;
  t.selection_seconds += stats.selection_seconds;
  t.sample_seconds += stats.sample_seconds;
  t.aggregate_seconds += stats.aggregate_seconds;
  t.tuples_completed += stats.tuples_completed;
  t.models_consulted += stats.models_consulted;
  t.cache_hits += stats.cache_hits;
  t.cache_misses += stats.cache_misses;
  t.arenas_leased += stats.arenas_leased;
  t.batches_joined += stats.batches_joined;
  t.batch_wait_seconds += stats.batch_wait_seconds;
  t.coalesced_rows += stats.coalesced_rows;
}

Db::Stats Db::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(query_stats_mu_);
    out = query_stats_;
  }
  out.rows_ingested = rows_ingested_.load(std::memory_order_relaxed);
  out.tables_updated = tables_updated_.load(std::memory_order_relaxed);
  out.models_refreshed = models_refreshed_.load(std::memory_order_relaxed);
  out.refresh_failures = refresh_failures_.load(std::memory_order_relaxed);
  out.generations_retired =
      generations_retired_.load(std::memory_order_relaxed);
  out.refresh_retries = refresh_retries_.load(std::memory_order_relaxed);
  out.breaker_open_total =
      breaker_open_total_.load(std::memory_order_relaxed);
  out.breakers_open = breakers_open_.load(std::memory_order_relaxed);
  out.refresh_failure_streak =
      refresh_failure_streak_.load(std::memory_order_relaxed);
  out.save_failures = save_failures_.load(std::memory_order_relaxed);
  out.save_failure_streak =
      save_failure_streak_.load(std::memory_order_relaxed);
  out.epoch = epoch_.load(std::memory_order_acquire);
  return out;
}

// ---- Live-data ingestion ---------------------------------------------------

Status Db::Append(const std::string& table,
                  const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return Status::OK();
  RESTORE_FAULT_POINT("ingest.validate");
  std::lock_guard<std::mutex> writer(ingest_mu_);
  std::shared_ptr<const Database> cur;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    cur = data_;
  }
  RESTORE_ASSIGN_OR_RETURN(const Table* existing, cur->GetTable(table));
  (void)existing;
  auto next = std::make_shared<Database>(cur->Clone());
  RESTORE_ASSIGN_OR_RETURN(Table* target, next->GetMutableTable(table));
  // Clone() shares dictionaries with the source snapshot, and appending an
  // unseen categorical value mutates the dictionary (GetOrInsert) — which
  // concurrent readers of the OLD snapshot are decoding through. Give the
  // mutated table private dictionary copies before touching it; codes are
  // copied verbatim, so they stay comparable within the new snapshot.
  for (const auto& col : target->columns()) {
    if (col.type() != ColumnType::kCategorical) continue;
    RESTORE_ASSIGN_OR_RETURN(Column * mut,
                             target->GetMutableColumn(col.name()));
    mut->set_dictionary(std::make_shared<Dictionary>(*mut->dictionary()));
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    Status s = target->AppendRow(rows[i]);
    if (!s.ok()) {
      // Nothing was published: the failed clone is simply dropped and
      // readers never observe a partial append.
      return Status::InvalidArgument(StrFormat(
          "append to '%s' rejected at row %zu: %s", table.c_str(), i,
          s.message().c_str()));
    }
  }
  PublishData(std::move(next), table, rows.size());
  rows_ingested_.fetch_add(rows.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status Db::UpdateTable(Table replacement) {
  const std::string table = replacement.name();
  RESTORE_FAULT_POINT("ingest.validate");
  std::lock_guard<std::mutex> writer(ingest_mu_);
  std::shared_ptr<const Database> cur;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    cur = data_;
  }
  RESTORE_ASSIGN_OR_RETURN(const Table* existing, cur->GetTable(table));
  if (existing->NumColumns() != replacement.NumColumns()) {
    return Status::InvalidArgument(StrFormat(
        "replacement for '%s' has %zu columns, expected %zu", table.c_str(),
        replacement.NumColumns(), existing->NumColumns()));
  }
  for (size_t i = 0; i < replacement.NumColumns(); ++i) {
    const Column& a = existing->columns()[i];
    const Column& b = replacement.columns()[i];
    if (a.name() != b.name() || a.type() != b.type()) {
      return Status::InvalidArgument(StrFormat(
          "replacement for '%s' column %zu is '%s'/%s, expected '%s'/%s",
          table.c_str(), i, b.name().c_str(), ColumnTypeName(b.type()),
          a.name().c_str(), ColumnTypeName(a.type())));
    }
  }
  // A rewrite invalidates at least its own row count worth of training
  // data; count at least 1 so even an empty replacement advances staleness.
  const uint64_t delta = std::max<uint64_t>(1, replacement.NumRows());
  auto next = std::make_shared<Database>(cur->Clone());
  RESTORE_RETURN_IF_ERROR(next->ReplaceTable(std::move(replacement)));
  PublishData(std::move(next), table, delta);
  tables_updated_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Db::PublishData(std::shared_ptr<const Database> next,
                     const std::string& table, uint64_t delta_rows) {
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    data_ = std::move(next);
    ingested_rows_by_table_[table] += delta_rows;
    epoch_.fetch_add(1, std::memory_order_release);
  }
  ReviveFailedModels(table);
  ScheduleStaleRefreshes();
}

void Db::ReviveFailedModels(const std::string& table) {
  // A once-latch caches its outcome permanently — including failures. New
  // data is new information, so a path that failed to train and touches the
  // ingested table gets a FRESH latch (a whole new entry): the next query
  // retries against the new snapshot instead of replaying a stale error.
  // Waiters still parked on the old entry see the old failure; that is the
  // answer for the data they pinned.
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& [key, entry] : models_) {
    (void)key;
    if (!entry->latch.done() || entry->latch.done_ok()) continue;
    if (std::find(entry->path.begin(), entry->path.end(), table) ==
        entry->path.end()) {
      continue;
    }
    auto fresh = std::make_shared<ModelEntry>();
    fresh->path = entry->path;
    fresh->generation = entry->generation;  // same seed: retry, not refresh
    fresh->publish_epoch = entry->publish_epoch;
    fresh->prev = entry->prev;
    entry = fresh;
  }
}

uint64_t Db::StalenessOf(const ModelEntry& entry) const {
  std::lock_guard<std::mutex> lock(data_mu_);
  return IngestMarkLocked(entry.path) - entry.ingest_mark + entry.stale_base;
}

DriftScore Db::DriftOf(const ModelEntry& entry) const {
  if (entry.drift_ref.empty()) return DriftScore();  // unavailable
  std::shared_ptr<const Database> snapshot;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    snapshot = data_;
  }
  return ScoreDrift(entry.drift_ref, *snapshot);
}

bool Db::DueForRefresh(const ModelEntry& entry,
                       bool any_staleness_when_unset) const {
  if (refresh_policy_.trigger == RefreshPolicy::Trigger::kDrift) {
    // Nothing was ingested into the path since training — the snapshot IS
    // the training data, so skip the O(rows) scoring pass outright.
    if (StalenessOf(entry) == 0) return false;
    const DriftScore drift = DriftOf(entry);
    if (!drift.available) return false;
    return (refresh_policy_.drift_ks_threshold > 0.0 &&
            drift.ks >= refresh_policy_.drift_ks_threshold) ||
           (refresh_policy_.drift_psi_threshold > 0.0 &&
            drift.psi >= refresh_policy_.drift_psi_threshold);
  }
  const uint64_t threshold =
      any_staleness_when_unset
          ? std::max<uint64_t>(1, refresh_policy_.staleness_rows_threshold)
          : refresh_policy_.staleness_rows_threshold;
  return StalenessOf(entry) >= threshold;
}

std::vector<ModelInfo> Db::Freshness() const {
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> heads;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) heads.emplace_back(key, entry);
  }
  std::shared_ptr<const Database> snapshot;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    snapshot = data_;
  }
  std::vector<ModelInfo> out;
  for (const auto& [key, entry] : heads) {
    if (!entry->latch.done_ok() || entry->model == nullptr) continue;
    ModelInfo info;
    info.path = entry->path;
    info.generation = entry->generation;
    info.trained_rows = entry->rows_at_train;
    info.current_rows = TotalPathRows(*snapshot, entry->path);
    info.staleness_rows = StalenessOf(*entry);
    info.train_seconds = entry->train_seconds;
    info.refreshing = entry->refreshing.load(std::memory_order_relaxed);
    info.loaded_from_disk = entry->loaded_from_disk;
    const DriftScore drift = DriftOf(*entry);
    info.drift_available = drift.available;
    info.drift_ks = drift.ks;
    info.drift_psi = drift.psi;
    info.drift_column = drift.worst_column;
    {
      std::lock_guard<std::mutex> lock(breaker_mu_);
      auto bit = breakers_.find(key);
      if (bit != breakers_.end()) {
        info.breaker_open = bit->second.open;
        info.consecutive_failures = bit->second.consecutive_failures;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

// ---- Background refresh ----------------------------------------------------

void Db::ScheduleStaleRefreshes() {
  if (refresh_threads_.empty() || !refresh_policy_.enabled()) return;
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> heads;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) heads.emplace_back(key, entry);
  }
  std::vector<std::string> due;
  for (const auto& [key, entry] : heads) {
    if (!entry->latch.done_ok() || entry->model == nullptr) continue;
    // An open breaker means this path just burned through its retry budget;
    // don't re-queue it until the half-open window lets a probe through.
    if (DecideBreaker(key) == BreakerDecision::kFailFast) continue;
    if (DueForRefresh(*entry, /*any_staleness_when_unset=*/false)) {
      due.push_back(key);
    }
  }
  if (due.empty()) return;
  std::lock_guard<std::mutex> lock(refresh_mu_);
  for (const auto& key : due) {
    if (refresh_pending_.insert(key).second) refresh_queue_.push_back(key);
  }
  refresh_cv_.notify_all();
}

void Db::RefreshWorkerLoop() {
  for (;;) {
    std::string key;
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      refresh_cv_.wait(lock, [&] {
        return refresh_stop_ || !refresh_queue_.empty();
      });
      if (refresh_stop_) return;
      key = refresh_queue_.front();
      refresh_queue_.pop_front();
      ++refresh_active_;
    }
    // A failed retrain keeps the previous generation serving. Transient
    // failures are retried with exponential backoff + deterministic jitter;
    // a path that exhausts its budget keeps failing opens its circuit
    // breaker, which gates re-queueing until the half-open window.
    const Status refreshed = RefreshWithRetry(key);
    // An ingest that landed mid-retrain found `key` still pending and
    // skipped it — re-check so its staleness is not silently dropped. Only a
    // SUCCESSFUL pass re-queues: after a failed one, the next ingest (or
    // breaker probe) re-schedules, so a permanently broken path cannot spin.
    bool still_stale = false;
    if (refreshed.ok()) {
      std::shared_ptr<ModelEntry> head;
      {
        std::lock_guard<std::mutex> lock(registry_mu_);
        auto it = models_.find(key);
        if (it != models_.end()) head = it->second;
      }
      still_stale = head != nullptr && head->latch.done_ok() &&
                    DueForRefresh(*head, /*any_staleness_when_unset=*/false);
    }
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      --refresh_active_;
      refresh_pending_.erase(key);
      if (still_stale && !refresh_stop_ &&
          refresh_pending_.insert(key).second) {
        refresh_queue_.push_back(key);
        refresh_cv_.notify_one();
      }
      if (refresh_queue_.empty() && refresh_active_ == 0) {
        refresh_idle_cv_.notify_all();
      }
    }
  }
}

Status Db::RefreshModelNow(const std::string& key) {
  std::shared_ptr<ModelEntry> entry;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = models_.find(key);
    if (it == models_.end()) return Status::OK();
    entry = it->second;
  }
  if (!entry->latch.done_ok() || entry->model == nullptr) return Status::OK();
  // An open breaker fails the refresh fast — the last good generation keeps
  // serving queries untouched. A due probe falls through and retrains.
  if (DecideBreaker(key) == BreakerDecision::kFailFast) {
    return Status::Unavailable(StrFormat(
        "circuit breaker open for path '%s' — serving generation %llu",
        key.c_str(), static_cast<unsigned long long>(entry->generation)));
  }
  bool expected = false;
  if (!entry->refreshing.compare_exchange_strong(expected, true)) {
    return Status::OK();  // another refresh of this path is already running
  }
  std::shared_ptr<const Database> snapshot;
  uint64_t mark = 0;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    snapshot = data_;
    mark = IngestMarkLocked(entry->path);
  }
  const uint64_t next_gen = entry->generation + 1;
  PathModelConfig cfg = config_.model;
  cfg.seed = GenerationSeed(key, next_gen);
  const PathModel* warm = nullptr;
  if (refresh_policy_.mode == RefreshPolicy::Mode::kFinetune) {
    cfg.epochs = refresh_policy_.finetune_epochs;
    warm = entry->model.get();
  }
  Status fault = Status::OK();
  if (FaultInjection::Enabled()) fault = FaultInjection::Fire("refresh.train");
  Result<std::unique_ptr<PathModel>> trained =
      fault.ok()
          ? PathModel::Train(*snapshot, annotation_, entry->path, cfg, warm)
          : Result<std::unique_ptr<PathModel>>(fault);
  entry->refreshing.store(false, std::memory_order_release);
  if (!trained.ok()) {
    refresh_failures_.fetch_add(1, std::memory_order_relaxed);
    refresh_failure_streak_.fetch_add(1, std::memory_order_relaxed);
    RecordTrainingResult(key, trained.status());
    return trained.status();  // previous generation keeps serving
  }
  refresh_failure_streak_.store(0, std::memory_order_relaxed);
  RecordTrainingResult(key, Status::OK());
  auto fresh = std::make_shared<ModelEntry>();
  fresh->model = std::shared_ptr<const PathModel>(std::move(trained).value());
  fresh->path = entry->path;
  fresh->generation = next_gen;
  fresh->ingest_mark = mark;
  fresh->rows_at_train = TotalPathRows(*snapshot, entry->path);
  fresh->drift_ref = SummarizeTables(*snapshot, entry->path);
  fresh->train_seconds = fresh->model->train_seconds();
  fresh->prev = entry;
  fresh->latch.SetDone(Status::OK());
  // Generations cut off the retained chain below; destroyed after every
  // lock is released (a chain of models may be freed here).
  std::shared_ptr<ModelEntry> dropped;
  {
    // Swap order is the whole correctness story: install the new head
    // FIRST, with publish_epoch one past the current epoch, THEN advance
    // the epoch. In the window between the two, queries pinned at the old
    // epoch walk past the new head to their generation; only queries that
    // pin AFTER the bump see the new one — no query ever mixes. ingest_mu_
    // serializes against writers so the epoch cannot move underneath the
    // two-step publication.
    std::lock_guard<std::mutex> writer(ingest_mu_);
    {
      std::lock_guard<std::mutex> reg(registry_mu_);
      auto it = models_.find(key);
      if (it == models_.end() || it->second != entry) {
        // Superseded while we trained (entry revived/replaced): drop ours.
        return Status::OK();
      }
      fresh->publish_epoch = epoch_.load(std::memory_order_relaxed) + 1;
      it->second = fresh;
      // Bound the generation chain kept for old-epoch queries. This rewrites
      // the `prev` of a node reachable from the just-published head (on every
      // refresh after the first, the cut point IS the former head), so it
      // must happen under registry_mu_ — the mutex readers hold to walk
      // `prev` in ModelForPath. Queries that already resolved an older
      // generation keep it alive through their own shared_ptr.
      ModelEntry* tail = fresh.get();
      for (int depth = 1; depth < kMaxChainedGens && tail->prev != nullptr;
           ++depth) {
        tail = tail->prev.get();
      }
      dropped = std::move(tail->prev);
    }
    std::lock_guard<std::mutex> lock(data_mu_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  models_refreshed_.fetch_add(1, std::memory_order_relaxed);
  generations_retired_.fetch_add(1, std::memory_order_relaxed);
  models_trained_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_train_seconds_ += fresh->train_seconds;
  }
  return Status::OK();
}

Status Db::RefreshWithRetry(const std::string& key) {
  Status s = RefreshModelNow(key);
  size_t attempt = 0;
  // kUnavailable means the breaker opened — retrying would just hammer a
  // path that already burned its failure budget, so stop immediately.
  while (!s.ok() && !s.IsUnavailable() &&
         attempt < refresh_policy_.max_retries &&
         DecideBreaker(key) != BreakerDecision::kFailFast) {
    ++attempt;
    refresh_retries_.fetch_add(1, std::memory_order_relaxed);
    BackoffWait(BackoffDelayMs(key, attempt));
    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      if (refresh_stop_) return s;
    }
    s = RefreshModelNow(key);
  }
  return s;
}

uint64_t Db::BackoffDelayMs(const std::string& key, size_t attempt) const {
  // Exponential base, capped: initial << (attempt - 1), up to backoff_max_ms.
  uint64_t base = refresh_policy_.backoff_initial_ms;
  const uint64_t cap = std::max(refresh_policy_.backoff_max_ms, base);
  for (size_t i = 1; i < attempt && base < cap; ++i) {
    base = std::min(cap, base * 2);
  }
  if (base == 0) return 0;
  // Jitter in [0, base/2], a pure function of (path, attempt): two runs of
  // the same failure sequence back off identically, but distinct paths (and
  // successive attempts) de-synchronize instead of thundering together.
  const uint64_t h =
      SeedForPath(key) ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(attempt));
  return base + h % (base / 2 + 1);
}

void Db::BackoffWait(uint64_t ms) {
  std::function<void(uint64_t)> hook;
  {
    std::lock_guard<std::mutex> lock(refresh_mu_);
    hook = refresh_backoff_hook_;
  }
  if (hook != nullptr) {
    hook(ms);  // fake clock for tests: record the delay, return immediately
    return;
  }
  if (ms == 0) return;
  std::unique_lock<std::mutex> lock(refresh_mu_);
  refresh_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return refresh_stop_; });
}

void Db::SetRefreshBackoffHookForTest(std::function<void(uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  refresh_backoff_hook_ = std::move(hook);
}

Db::BreakerDecision Db::DecideBreaker(const std::string& key) const {
  if (refresh_policy_.breaker_failure_threshold == 0) {
    return BreakerDecision::kClosed;  // breaker disabled
  }
  std::lock_guard<std::mutex> lock(breaker_mu_);
  auto it = breakers_.find(key);
  if (it == breakers_.end() || !it->second.open) {
    return BreakerDecision::kClosed;
  }
  return std::chrono::steady_clock::now() >= it->second.open_until
             ? BreakerDecision::kProbe
             : BreakerDecision::kFailFast;
}

void Db::RecordTrainingResult(const std::string& key, const Status& status) {
  if (refresh_policy_.breaker_failure_threshold == 0) return;
  // Cooperative aborts say nothing about model health: a caller's deadline
  // or cancel must never push a healthy path toward an open breaker.
  if (status.IsCancelled() || status.IsDeadlineExceeded()) return;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (status.ok()) {
    auto it = breakers_.find(key);
    if (it != breakers_.end()) {
      if (it->second.open) {
        breakers_open_.fetch_sub(1, std::memory_order_relaxed);
      }
      breakers_.erase(it);  // success closes the breaker outright
    }
    return;
  }
  BreakerState& b = breakers_[key];
  ++b.consecutive_failures;
  if (b.consecutive_failures < refresh_policy_.breaker_failure_threshold) {
    return;
  }
  if (!b.open) {
    b.open = true;
    breaker_open_total_.fetch_add(1, std::memory_order_relaxed);
    breakers_open_.fetch_add(1, std::memory_order_relaxed);
  }
  // A failed half-open probe lands here too: re-arm the full open window.
  b.open_until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(refresh_policy_.breaker_open_ms);
}

Status Db::RefreshStaleModels() {
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> heads;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) heads.emplace_back(key, entry);
  }
  Status first = Status::OK();
  for (const auto& [key, entry] : heads) {
    if (!entry->latch.done_ok() || entry->model == nullptr) continue;
    if (!DueForRefresh(*entry, /*any_staleness_when_unset=*/true)) continue;
    Status s = RefreshModelNow(key);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

void Db::WaitForRefreshIdle() {
  std::unique_lock<std::mutex> lock(refresh_mu_);
  refresh_idle_cv_.wait(lock, [&] {
    return refresh_stop_ || (refresh_queue_.empty() && refresh_active_ == 0);
  });
}

void Db::StopRefresher() {
  {
    std::lock_guard<std::mutex> lock(refresh_mu_);
    refresh_stop_ = true;
  }
  refresh_cv_.notify_all();
  refresh_idle_cv_.notify_all();
  for (auto& t : refresh_threads_) {
    if (t.joinable()) t.join();
  }
  refresh_threads_.clear();
}

Status Db::PerturbModelsForTest(float stddev, uint64_t seed) {
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> heads;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) heads.emplace_back(key, entry);
  }
  for (const auto& [key, entry] : heads) {
    if (!entry->latch.done_ok() || entry->model == nullptr) continue;
    // PathModel is not copyable: a Save -> Load roundtrip clones it, then
    // the clone's parameters take the seeded noise (per-path seed so every
    // model is perturbed differently but reproducibly).
    BinaryWriter w;
    entry->model->Save(&w);
    BinaryReader r(w.buffer());
    RESTORE_ASSIGN_OR_RETURN(std::unique_ptr<PathModel> clone,
                             PathModel::Load(*database_, annotation_, &r));
    clone->PerturbParametersForTest(stddev, seed ^ Fnv1a64(key));
    auto fresh = std::make_shared<ModelEntry>();
    fresh->model = std::shared_ptr<const PathModel>(std::move(clone));
    fresh->path = entry->path;
    fresh->generation = entry->generation;
    fresh->ingest_mark = entry->ingest_mark;
    fresh->rows_at_train = entry->rows_at_train;
    fresh->stale_base = entry->stale_base;
    fresh->train_seconds = entry->train_seconds;
    fresh->loaded_from_disk = entry->loaded_from_disk;
    fresh->drift_ref = entry->drift_ref;
    fresh->latch.SetDone(Status::OK());
    // Published exactly like a refresh hot swap (see RefreshModelNow):
    // install the head with publish_epoch one past the current epoch under
    // ingest_mu_, then bump the epoch — pinned in-flight queries keep the
    // intact generation through `prev`.
    std::lock_guard<std::mutex> writer(ingest_mu_);
    bool installed = false;
    {
      std::lock_guard<std::mutex> reg(registry_mu_);
      auto it = models_.find(key);
      if (it != models_.end() && it->second == entry) {
        fresh->publish_epoch = epoch_.load(std::memory_order_relaxed) + 1;
        fresh->prev = entry;
        it->second = fresh;
        installed = true;
      }
    }
    if (installed) {
      std::lock_guard<std::mutex> lock(data_mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
  }
  return Status::OK();
}

// ---- Persistence -----------------------------------------------------------

Status Db::SaveModels(const std::string& dir) const {
  Status s = SaveModelsImpl(dir);
  if (s.ok()) {
    save_failure_streak_.store(0, std::memory_order_relaxed);
  } else {
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    save_failure_streak_.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

Status Db::SaveModelsImpl(const std::string& dir) const {
  // One save at a time: concurrent saves would read the same next_gen and
  // clobber each other's gen-N.tmp staging directory mid-write. Serialized,
  // each save commits its own distinct generation.
  std::lock_guard<std::mutex> save_lock(save_mu_);
  RESTORE_RETURN_IF_ERROR(MakeDirectory(dir));

  // Next generation number: one past everything on disk (CURRENT may lag
  // the newest directory after a crash between rename and CURRENT swap).
  uint64_t next_gen = 1;
  {
    Result<uint64_t> current = ReadCurrentGeneration(dir);
    if (current.ok()) next_gen = std::max(next_gen, current.value() + 1);
    const std::vector<uint64_t> gens = ListGenerations(dir);
    if (!gens.empty()) next_gen = std::max(next_gen, gens.back() + 1);
  }

  // Snapshot the successfully-trained models; training that completes after
  // this point is simply not part of the snapshot. Models are immutable once
  // their latch is done, so serialization needs no further locking.
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) {
      if (entry->latch.done_ok() && entry->model != nullptr) {
        snapshot.emplace_back(key, entry);
      }
    }
  }

  // Stage the whole generation in a tmp directory, fsync it, then rename —
  // a crash anywhere in here leaves at worst a gen-N.tmp that the next save
  // sweeps away, never a half-written generation a reopen could load.
  const std::string gen_dir = dir + "/" + GenDirName(next_gen);
  const std::string tmp_dir = gen_dir + ".tmp";
  RemoveDirRecursive(tmp_dir);
  RESTORE_RETURN_IF_ERROR(MakeDirectory(tmp_dir));

  BinaryWriter manifest;
  manifest.U64(EngineConfigFingerprint(config_));
  manifest.U64(snapshot.size());
  for (const auto& [key, entry] : snapshot) {
    BinaryWriter w;
    entry->model->Save(&w);
    const std::string filename = ModelFileName(key);
    RESTORE_FAULT_POINT("persist.write");
    RESTORE_RETURN_IF_ERROR(WriteChecksummedFileAtomic(
        tmp_dir + "/" + filename, kModelMagic, kModelVersion, w.buffer()));
    manifest.Str(key);
    manifest.Str(filename);
    manifest.U64(entry->generation);
    manifest.U64(entry->rows_at_train);
    manifest.F64(entry->train_seconds);
    // v4: the generation's drift reference summaries ride along, so a
    // reopened Db scores drift against the ORIGINAL training snapshot
    // instead of silently resetting the baseline to whatever it loads over.
    manifest.U64(entry->drift_ref.size());
    for (const ColumnSummary& s : entry->drift_ref) s.Save(&manifest);
  }

  // Persist completed path selections so a reopened Db answers without
  // re-running (and possibly re-training for) the selection procedure.
  std::vector<std::pair<std::string, std::vector<std::string>>> selections;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [target, entry] : selected_) {
      if (entry->latch.done_ok()) selections.emplace_back(target, entry->path);
    }
  }
  manifest.U64(selections.size());
  for (const auto& [target, path] : selections) {
    manifest.Str(target);
    manifest.VecStr(path);
  }
  RESTORE_FAULT_POINT("persist.write");
  RESTORE_RETURN_IF_ERROR(
      WriteChecksummedFileAtomic(tmp_dir + "/" + kManifestName,
                                 kManifestMagic, kManifestVersion,
                                 manifest.buffer()));
  RESTORE_RETURN_IF_ERROR(FsyncDirectory(tmp_dir));
  if (std::rename(tmp_dir.c_str(), gen_dir.c_str()) != 0) {
    return Status::Internal(StrFormat("rename '%s' -> '%s': %s",
                                      tmp_dir.c_str(), gen_dir.c_str(),
                                      std::strerror(errno)));
  }
  RESTORE_RETURN_IF_ERROR(FsyncDirectory(dir));

  // The atomic CURRENT swap is the commit point of the save.
  BinaryWriter current;
  current.U64(next_gen);
  RESTORE_FAULT_POINT("persist.write");
  RESTORE_RETURN_IF_ERROR(WriteChecksummedFileAtomic(
      dir + "/" + kCurrentName, kCurrentMagic, kCurrentVersion,
      current.buffer()));

  // Retire generations beyond the rollback window + crashed staging dirs.
  // Best-effort: the new generation is already committed.
  for (uint64_t gen : ListGenerations(dir)) {
    if (gen + keep_generations_ <= next_gen) {
      RemoveDirRecursive(dir + "/" + GenDirName(gen));
    }
  }
  RemoveStaleTmpDirs(dir);
  return Status::OK();
}

Status Db::LoadGenerationInto(
    const std::string& gen_dir,
    std::map<std::string, std::shared_ptr<ModelEntry>>* entries,
    std::map<std::string, std::vector<std::string>>* selections) {
  uint32_t version = 0;
  RESTORE_ASSIGN_OR_RETURN(
      std::string payload,
      ReadChecksummedFile(gen_dir + "/" + kManifestName, kManifestMagic,
                          kManifestVersion, &version));
  BinaryReader manifest(std::move(payload));
  const uint64_t fingerprint = manifest.U64();
  const uint64_t expected = EngineConfigFingerprint(config_);
  RESTORE_RETURN_IF_ERROR(manifest.status());
  if (fingerprint != expected) {
    return Status::FailedPrecondition(StrFormat(
        "model directory '%s' was saved under a different engine "
        "configuration (fingerprint %016llx, this Db %016llx) — model "
        "hyperparameters must match the ones the models were trained with",
        gen_dir.c_str(), static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(expected)));
  }
  const uint64_t num_models = manifest.U64();
  RESTORE_RETURN_IF_ERROR(manifest.status());
  for (uint64_t i = 0; i < num_models; ++i) {
    const std::string key = manifest.Str();
    const std::string filename = manifest.Str();
    uint64_t generation = 1;
    uint64_t trained_rows = 0;
    double train_seconds = 0.0;
    std::vector<ColumnSummary> drift_ref;
    if (version >= 3) {
      generation = manifest.U64();
      trained_rows = manifest.U64();
      train_seconds = manifest.F64();
    }
    if (version >= 4) {
      const uint64_t num_summaries = manifest.U64();
      RESTORE_RETURN_IF_ERROR(manifest.status());
      drift_ref.reserve(num_summaries);
      for (uint64_t s = 0; s < num_summaries; ++s) {
        RESTORE_ASSIGN_OR_RETURN(ColumnSummary summary,
                                 ColumnSummary::Load(&manifest));
        drift_ref.push_back(std::move(summary));
      }
    }
    RESTORE_RETURN_IF_ERROR(manifest.status());
    RESTORE_ASSIGN_OR_RETURN(
        std::string model_payload,
        ReadChecksummedFile(gen_dir + "/" + filename, kModelMagic,
                            kModelVersion));
    BinaryReader r(std::move(model_payload));
    RESTORE_ASSIGN_OR_RETURN(std::unique_ptr<PathModel> model,
                             PathModel::Load(*database_, annotation_, &r));
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("'%s' has %zu trailing bytes", filename.c_str(),
                    r.remaining()));
    }
    if (PathKey(model->path()) != key) {
      return Status::InvalidArgument(
          StrFormat("'%s' stores path '%s' but the manifest says '%s'",
                    filename.c_str(), PathKey(model->path()).c_str(),
                    key.c_str()));
    }
    // The arena-retention cap and the batching knobs are serving knobs, not
    // part of the persisted payload: apply this Db's configuration to the
    // restored model.
    model->set_scratch_pool_max_idle(config_.model.max_pooled_scratch_arenas);
    model->set_batching_config(config_.model.batching_enabled,
                               config_.model.batch_wait_us,
                               config_.model.batch_max_rows);
    auto entry = std::make_shared<ModelEntry>();
    entry->path = model->path();
    entry->model = std::shared_ptr<const PathModel>(std::move(model));
    entry->generation = generation;
    entry->rows_at_train = trained_rows;
    entry->train_seconds = train_seconds;
    entry->drift_ref = std::move(drift_ref);
    entry->loaded_from_disk = true;
    // Staleness the snapshot was already carrying: rows that exist now but
    // did not when the model was trained. Unknowable for pre-generational
    // manifests (trained_rows 0), which start fresh.
    if (trained_rows > 0) {
      const uint64_t now_rows = TotalPathRows(*database_, entry->path);
      entry->stale_base = now_rows > trained_rows ? now_rows - trained_rows
                                                  : 0;
    }
    entry->latch.SetDone(Status::OK());
    (*entries)[key] = std::move(entry);
  }
  const uint64_t num_selections = manifest.U64();
  RESTORE_RETURN_IF_ERROR(manifest.status());
  for (uint64_t i = 0; i < num_selections; ++i) {
    const std::string target = manifest.Str();
    std::vector<std::string> path = manifest.VecStr();
    RESTORE_RETURN_IF_ERROR(manifest.status());
    (*selections)[target] = std::move(path);
  }
  if (!manifest.AtEnd()) {
    return Status::InvalidArgument("manifest has trailing bytes");
  }
  return Status::OK();
}

Status Db::LoadModels(const std::string& dir, uint64_t generation_override) {
  const auto commit =
      [this](std::map<std::string, std::shared_ptr<ModelEntry>>* entries,
             std::map<std::string, std::vector<std::string>>* selections) {
        for (auto& [key, entry] : *entries) {
          models_[key] = std::move(entry);
          ++models_loaded_;
        }
        for (auto& [target, path] : *selections) {
          auto it = selected_.find(target);
          if (it == selected_.end()) continue;  // target no longer incomplete
          it->second->path = std::move(path);
          it->second->latch.SetDone(Status::OK());
        }
      };
  const auto try_generation = [&](uint64_t gen) -> Status {
    std::map<std::string, std::shared_ptr<ModelEntry>> entries;
    std::map<std::string, std::vector<std::string>> selections;
    RESTORE_RETURN_IF_ERROR(LoadGenerationInto(dir + "/" + GenDirName(gen),
                                               &entries, &selections));
    commit(&entries, &selections);
    return Status::OK();
  };

  if (generation_override != 0) {
    // Pinned rollback: that exact generation or nothing.
    return try_generation(generation_override);
  }

  uint64_t current = 0;
  {
    Result<uint64_t> cur = ReadCurrentGeneration(dir);
    if (cur.ok()) current = cur.value();
  }
  // CURRENT's target first, then every other generation newest-first: a
  // crash-corrupted (or half-deleted) newest generation must not strand the
  // readable ones behind it. The FIRST failure is what gets reported if
  // nothing loads — it names the generation the directory claims to be at.
  std::vector<uint64_t> order;
  if (current != 0) order.push_back(current);
  const std::vector<uint64_t> gens = ListGenerations(dir);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (*it != current) order.push_back(*it);
  }
  Status first_error = Status::OK();
  for (uint64_t gen : order) {
    Status s = try_generation(gen);
    if (s.ok()) return Status::OK();
    if (first_error.ok()) first_error = s;
  }
  if (!order.empty()) return first_error;

  // No generational snapshot at all: fall back to the legacy flat layout
  // (pre-generational manifest right in `dir`), loaded as generation 1.
  std::map<std::string, std::shared_ptr<ModelEntry>> entries;
  std::map<std::string, std::vector<std::string>> selections;
  RESTORE_RETURN_IF_ERROR(LoadGenerationInto(dir, &entries, &selections));
  commit(&entries, &selections);
  return Status::OK();
}

// ---- Session / PreparedQuery -----------------------------------------------

Result<PreparedQuery> Session::Prepare(const std::string& sql) const {
  RESTORE_ASSIGN_OR_RETURN(PreparedStatement stmt,
                           PreparedStatement::Prepare(db_->database(), sql));
  return PreparedQuery(db_, std::move(stmt));
}

Result<ResultSet> Session::Execute(const std::string& sql,
                                   const QueryOptions& options) const {
  return db_->ExecuteCompletedSql(sql, options);
}

Result<ResultSet> Session::Execute(const Query& query,
                                   const QueryOptions& options) const {
  return db_->ExecuteCompleted(query, options);
}

ResultSetFuture Session::ExecuteAsync(const std::string& sql,
                                      const QueryOptions& options) const {
  std::shared_ptr<Db> db = db_;
  return ResultSetFuture::Async(ThreadPool::Global(), [db, sql, options]() {
    return db->ExecuteCompletedSql(sql, options);
  });
}

Result<ResultSet> PreparedQuery::Run(const std::vector<Value>& params,
                                     const QueryOptions& options) const {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("PreparedQuery is not bound to a Db");
  }
  Result<Query> bound = stmt_.Bind(params);
  if (!bound.ok()) {
    // Bind failures count as finished (failed) queries too, so the per-Db
    // outcome counters always sum to the number of queries issued.
    db_->RecordQuery(ExecStats(), bound.status());
    return bound.status();
  }
  return db_->ExecuteCompleted(*bound, options);
}

ResultSetFuture PreparedQuery::RunAsync(const std::vector<Value>& params,
                                        const QueryOptions& options) const {
  if (db_ == nullptr) {
    return ResultSetFuture::MakeReady(
        Status::FailedPrecondition("PreparedQuery is not bound to a Db"));
  }
  std::shared_ptr<Db> db = db_;
  PreparedStatement stmt = stmt_;
  return ResultSetFuture::Async(
      ThreadPool::Global(), [db, stmt, params, options]() -> Result<ResultSet> {
        Result<Query> bound = stmt.Bind(params);
        if (!bound.ok()) {
          db->RecordQuery(ExecStats(), bound.status());
          return bound.status();
        }
        return db->ExecuteCompleted(*bound, options);
      });
}

}  // namespace restore
