#ifndef RESTORE_RESTORE_CACHE_H_
#define RESTORE_RESTORE_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "storage/table.h"

namespace restore {

/// Cache of completed joins (Section 4.5): data synthesized for one query is
/// reused by later queries over the same join path, and queries over a
/// sub-path reuse a superset join by projection.
///
/// Thread safety: all operations are safe under concurrent access. Entries
/// are hash-sharded with one mutex per shard so unrelated lookups do not
/// contend; hit/miss counters are atomics (the old implementation mutated
/// `mutable` non-atomic counters from const lookups — a data race under the
/// concurrent Db facade).
///
/// Budget: `budget_bytes` bounds the total approximate payload size. On
/// overflow the least-recently-used entries of the shard are evicted; an
/// entry larger than a shard's budget is not cached at all. 0 = unbounded.
/// Lookups return shared_ptr handles, so a result stays valid even if its
/// entry is evicted while the caller still aggregates over it.
class CompletionCache {
 public:
  explicit CompletionCache(size_t budget_bytes = 0, size_t num_shards = 8);

  CompletionCache(const CompletionCache&) = delete;
  CompletionCache& operator=(const CompletionCache&) = delete;

  /// Stores a completed join covering exactly `tables`. `epoch` keys the
  /// entry to one data/model generation of the owning Db: lookups only see
  /// entries of their own epoch, so a hot swap (ingestion or model refresh)
  /// invalidates every stale completion simply by bumping the epoch — old
  /// entries become unreachable and age out through the LRU budget. The
  /// default epoch 0 reproduces the frozen-database behavior bit for bit.
  void Put(const std::set<std::string>& tables,
           std::shared_ptr<const Table> joined, uint64_t epoch = 0);
  void Put(const std::set<std::string>& tables, Table joined,
           uint64_t epoch = 0) {
    Put(tables, std::make_shared<const Table>(std::move(joined)), epoch);
  }

  /// Exact hit: a completed join over exactly `tables` at `epoch`, or
  /// nullptr.
  std::shared_ptr<const Table> GetExact(const std::set<std::string>& tables,
                                        uint64_t epoch = 0) const;

  /// Superset hit: the smallest cached join of `epoch` whose table set is a
  /// superset of `tables` (its projection serves the query), or nullptr.
  /// Served from a per-table index of entry keys: only entries containing
  /// the rarest query table are examined — O(candidates in that table), not
  /// O(all entries).
  std::shared_ptr<const Table> GetCovering(const std::set<std::string>& tables,
                                           uint64_t epoch = 0) const;

  size_t size() const;
  /// Approximate bytes of all cached payloads.
  size_t bytes() const;
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t budget_bytes() const { return budget_bytes_; }
  void Clear();

  /// Approximate in-memory payload size of a table (column vectors only).
  static size_t ApproxTableBytes(const Table& table);

 private:
  struct Entry {
    std::set<std::string> tables;
    std::shared_ptr<const Table> joined;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    size_t bytes = 0;
  };

  /// Entry key: the sorted table list "t1|t2|...|", plus "#<epoch>" when
  /// epoch != 0 (epoch 0 keeps the historical key so frozen databases hash
  /// to the same shards as before). GetCovering's key parser relies on this
  /// shape: table names up to the last '|', epoch suffix after it.
  static std::string Key(const std::set<std::string>& tables, uint64_t epoch);
  Shard& ShardFor(const std::string& key) const;
  /// Evicts LRU entries of `shard` until it fits its budget slice.
  /// `keep` is never evicted. Caller holds the shard mutex; evicted entries
  /// are also removed from the per-table index.
  void EvictLocked(Shard* shard, const std::string& keep);

  /// Per-table index maintenance. Lock order: a shard mutex may be held
  /// while taking index_mu_ (Put/evict); index_mu_ is NEVER held while
  /// taking a shard mutex (GetCovering snapshots candidates, releases, then
  /// probes shards), so the two can't deadlock.
  void IndexAdd(const std::set<std::string>& tables, const std::string& key);
  void IndexRemove(const std::set<std::string>& tables,
                   const std::string& key);

  const size_t budget_bytes_;
  const size_t shard_budget_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> clock_{0};
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
  mutable std::atomic<size_t> evictions_{0};

  // table name -> keys of the entries whose table set contains it.
  mutable std::mutex index_mu_;
  std::map<std::string, std::set<std::string>> keys_by_table_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_CACHE_H_
