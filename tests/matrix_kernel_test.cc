// Conformance property tests for the blocked/vectorized GEMM kernels: the
// dispatched kernels (AVX2 or portable, threaded or inline) must match a
// naive reference implementation within tolerance across random rectangular
// shapes, including empty, 1xN, and non-multiple-of-tile sizes that exercise
// every micro-kernel edge path.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/matrix.h"

namespace restore {
namespace {

constexpr float kTol = 1e-4f;

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void NaiveMatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      for (size_t j = 0; j < b.cols(); ++j) {
        out->at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
}

void NaiveMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.rows());
  out->Fill(0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(j, p);
      out->at(i, j) = acc;
    }
  }
}

void NaiveMatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      for (size_t j = 0; j < b.cols(); ++j) {
        out->at(p, j) += a.at(i, p) * b.at(i, j);
      }
    }
  }
}

void ExpectNear(const Matrix& got, const Matrix& want, const char* what,
                size_t m, size_t k, size_t n) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], want.data()[i], kTol)
        << what << " mismatch at flat index " << i << " for shape m=" << m
        << " k=" << k << " n=" << n;
  }
}

// Shapes chosen to hit: empty matrices, single rows/cols, sizes below one
// register tile, exact tile multiples (4 rows, 24/16/8 cols), and every
// remainder path (rows % 4, cols % 24 in {1..23}, k % 8).
const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 24, 25, 33, 64};

TEST(MatrixKernelConformance, MatMulMatchesNaive) {
  Rng rng(101);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;  // subsample
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(k, n, rng);
        Matrix got, want;
        MatMul(a, b, &got);
        NaiveMatMul(a, b, &want);
        ExpectNear(got, want, "MatMul", m, k, n);
      }
    }
  }
}

TEST(MatrixKernelConformance, MatMulTransBMatchesNaive) {
  Rng rng(202);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(n, k, rng);
        Matrix got, want;
        MatMulTransB(a, b, &got);
        NaiveMatMulTransB(a, b, &want);
        ExpectNear(got, want, "MatMulTransB", m, k, n);
      }
    }
  }
}

TEST(MatrixKernelConformance, MatMulTransAAccumMatchesNaiveAndAccumulates) {
  Rng rng(303);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(m, n, rng);
        // Non-zero initial contents verify the ACCUMULATE semantics.
        Matrix got = RandomMatrix(k, n, rng);
        Matrix want = got;
        MatMulTransAAccum(a, b, &got);
        NaiveMatMulTransAAccum(a, b, &want);
        ExpectNear(got, want, "MatMulTransAAccum", m, k, n);
      }
    }
  }
}

void NaiveMatMulColsSlice(const Matrix& a, const Matrix& b, size_t c0,
                          size_t c1, Matrix* out) {
  // Slice semantics: out already sized [m x n]; only [c0, c1) written.
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = c0; j < c1; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(p, j);
      out->at(i, j) = acc;
    }
  }
}

// The sliced kernel must (1) match naive within tolerance, (2) leave
// columns outside the window untouched, and (3) be BIT-identical to the
// full MatMul on every computed column — the contract MadeModel's sliced
// sampling path builds on.
TEST(MatrixKernelConformance, MatMulColsSliceMatchesFullKernelBitExact) {
  Rng rng(505);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(k, n, rng);
        Matrix full;
        MatMul(a, b, &full);
        // Windows: empty, full width, a prefix, and an inner unaligned one.
        const size_t windows[][2] = {
            {0, 0}, {0, n}, {0, n / 2}, {n / 3, n / 3 + (n - n / 3) / 2}};
        for (const auto& w : windows) {
          const size_t c0 = w[0], c1 = w[1];
          if (c0 > c1 || c1 > n) continue;
          const float sentinel = -12345.0f;
          Matrix got(m, n, sentinel);
          MatMulColsSlice(a, b, c0, c1, &got);
          Matrix want(m, n, sentinel);
          NaiveMatMulColsSlice(a, b, c0, c1, &want);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              if (j >= c0 && j < c1) {
                ASSERT_NEAR(got.at(i, j), want.at(i, j), kTol)
                    << "slice [" << c0 << "," << c1 << ") m=" << m
                    << " k=" << k << " n=" << n;
                // Bit-exact vs the full kernel, not just close.
                ASSERT_EQ(got.at(i, j), full.at(i, j))
                    << "slice [" << c0 << "," << c1 << ") m=" << m
                    << " k=" << k << " n=" << n;
              } else {
                ASSERT_EQ(got.at(i, j), sentinel)
                    << "outside-slice column clobbered at (" << i << "," << j
                    << ")";
              }
            }
          }
        }
      }
    }
  }
}

// The fused epilogue (bias -> relu -> residual in the store phase) must be
// bit-identical to running the separate passes — including the degenerate
// k == 0 product, where the epilogue applies to an all-zero GEMM result.
TEST(MatrixKernelConformance, MatMulFusedMatchesSeparatePassesBitExact) {
  Rng rng(606);
  const struct { size_t m, k, n; } shapes[] = {
      {1, 1, 1}, {3, 0, 7}, {3, 5, 7}, {4, 8, 24}, {17, 9, 33}, {64, 40, 64},
      {129, 65, 77}};
  for (const auto& sh : shapes) {
    Matrix a = RandomMatrix(sh.m, sh.k, rng);
    Matrix b = RandomMatrix(sh.k, sh.n, rng);
    Matrix bias = RandomMatrix(1, sh.n, rng);
    Matrix residual = RandomMatrix(sh.m, sh.n, rng);
    Matrix want;
    MatMul(a, b, &want);
    AddBiasRows(bias, &want);
    ReluInPlace(&want);
    AddInPlace(residual, &want);
    Matrix got;
    MatMulFused(a, b, &bias, /*relu=*/true, &residual, &got);
    ASSERT_EQ(got.rows(), want.rows());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i])
          << "fused mismatch at " << i << " for m=" << sh.m << " k=" << sh.k
          << " n=" << sh.n;
    }
    // Bias-only flavor (the inference Dense/MaskedDense forward).
    Matrix want2;
    MatMul(a, b, &want2);
    AddBiasRows(bias, &want2);
    Matrix got2;
    MatMulFused(a, b, &bias, /*relu=*/false, /*residual=*/nullptr, &got2);
    for (size_t i = 0; i < got2.size(); ++i) {
      ASSERT_EQ(got2.data()[i], want2.data()[i]) << "bias-only mismatch";
    }
    // Sliced bias flavor.
    Matrix got3(sh.m, sh.n, 0.0f);
    const size_t c0 = sh.n / 3, c1 = sh.n;
    MatMulColsSliceBias(a, b, bias, c0, c1, &got3);
    for (size_t i = 0; i < sh.m; ++i) {
      for (size_t j = c0; j < c1; ++j) {
        ASSERT_EQ(got3.at(i, j), want2.at(i, j)) << "sliced-bias mismatch";
      }
    }
  }
}

// Packed-B MatMulTransB: the 3-arg overload (thread-local pack buffer) and
// the caller-scratch overload must agree bitwise, and shapes on both sides
// of the pack threshold must match naive within tolerance (covered above);
// here we pin pack-vs-scratch equivalence and the accumulate-into-row-block
// kernel used by incremental sampling.
TEST(MatrixKernelConformance, PackedTransBScratchOverloadMatches) {
  Rng rng(707);
  const struct { size_t m, k, n; } shapes[] = {
      {2, 4, 3},    // below the pack threshold: dot-form path
      {16, 8, 4},   // exactly at the threshold
      {64, 40, 64}, // the training backward shape
      {129, 65, 77}};
  for (const auto& sh : shapes) {
    Matrix a = RandomMatrix(sh.m, sh.k, rng);
    Matrix b = RandomMatrix(sh.n, sh.k, rng);
    Matrix got_tl, got_scratch, pack;
    MatMulTransB(a, b, &got_tl);
    MatMulTransB(a, b, &got_scratch, &pack);
    ASSERT_EQ(got_tl.rows(), got_scratch.rows());
    for (size_t i = 0; i < got_tl.size(); ++i) {
      ASSERT_EQ(got_tl.data()[i], got_scratch.data()[i])
          << "pack-scratch mismatch at " << i;
    }
    Matrix want;
    NaiveMatMulTransB(a, b, &want);
    ExpectNear(got_scratch, want, "MatMulTransB(packed)", sh.m, sh.k, sh.n);
  }
}

TEST(MatrixKernelConformance, MatMulRowsAccumMatchesNaive) {
  Rng rng(808);
  const struct { size_t m, k, n, row0, brows; } shapes[] = {
      {0, 4, 8, 0, 8},   // empty batch
      {5, 1, 3, 2, 6},   // 1-wide delta
      {64, 8, 64, 16, 40},  // the incremental-sampling shape
      {33, 7, 65, 5, 20}};
  for (const auto& sh : shapes) {
    Matrix a = RandomMatrix(sh.m, sh.k, rng);
    Matrix b = RandomMatrix(sh.brows, sh.n, rng);
    Matrix got = RandomMatrix(sh.m, sh.n, rng);  // accumulate semantics
    Matrix want = got;
    MatMulRowsAccum(a, b, sh.row0, &got);
    for (size_t i = 0; i < sh.m; ++i) {
      for (size_t j = 0; j < sh.n; ++j) {
        float acc = want.at(i, j);
        for (size_t p = 0; p < sh.k; ++p) {
          acc += a.at(i, p) * b.at(sh.row0 + p, j);
        }
        want.at(i, j) = acc;
      }
    }
    ExpectNear(got, want, "MatMulRowsAccum", sh.m, sh.k, sh.n);
  }
}

TEST(MatrixKernelConformance, RowMaxMatchesScalarFold) {
  Rng rng(909);
  for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{8}, size_t{9},
                   size_t{16}, size_t{24}, size_t{31}, size_t{300}}) {
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
    float want = v[0];
    for (float x : v) want = std::max(want, x);
    EXPECT_EQ(RowMax(v.data(), n), want) << "n=" << n;
  }
}

TEST(MatrixKernelConformance, LargeShapesCrossParallelThreshold) {
  // Shapes big enough to take the ParallelFor path with several shards.
  Rng rng(404);
  const struct { size_t m, k, n; } shapes[] = {
      {129, 65, 77}, {256, 40, 256}, {100, 256, 96}, {515, 33, 17}};
  for (const auto& s : shapes) {
    Matrix a = RandomMatrix(s.m, s.k, rng);
    Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix got, want;
    MatMul(a, b, &got);
    NaiveMatMul(a, b, &want);
    ExpectNear(got, want, "MatMul(parallel)", s.m, s.k, s.n);

    Matrix bt = RandomMatrix(s.n, s.k, rng);
    Matrix got_t, want_t;
    MatMulTransB(a, bt, &got_t);
    NaiveMatMulTransB(a, bt, &want_t);
    ExpectNear(got_t, want_t, "MatMulTransB(parallel)", s.m, s.k, s.n);
  }
}

TEST(MatrixKernelConformance, ResizePreservesContentsOnSameShape) {
  Matrix m(3, 5);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = static_cast<float>(i);
  m.Resize(3, 5);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], static_cast<float>(i));
  }
  m.Resize(5, 3);  // shape change -> zero-filled
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t width : {size_t{1}, size_t{3}}) {
    ThreadPool pool(width - 1);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(0, hits.size(), 7, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at width " << width;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<int> outer(8, 0);
  pool.ParallelFor(0, outer.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::vector<int> inner(64, 0);
      pool.ParallelFor(0, inner.size(), 4, [&](size_t jlo, size_t jhi) {
        for (size_t j = jlo; j < jhi; ++j) ++inner[j];
      });
      int sum = 0;
      for (int v : inner) sum += v;
      outer[i] = sum;
    }
  });
  for (int v : outer) EXPECT_EQ(v, 64);
}

}  // namespace
}  // namespace restore
