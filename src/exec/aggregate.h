#ifndef RESTORE_EXEC_AGGREGATE_H_
#define RESTORE_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/query.h"
#include "storage/table.h"

namespace restore {

/// Evaluates the conjunction of `predicates` over `table` and returns the
/// indices of qualifying rows. Column references may be unqualified.
Result<std::vector<size_t>> FilterRows(
    const Table& table, const std::vector<Predicate>& predicates);

/// The result of an aggregate query: one entry per group. For queries without
/// GROUP BY there is a single entry with an empty key.
struct QueryResult {
  /// group key (rendered values, in group-by order) -> aggregate values in
  /// SELECT-list order.
  std::map<std::vector<std::string>, std::vector<double>> groups;

  std::string ToString() const;
};

/// Computes the grouped aggregates of `query` over the (already joined and
/// filtered) rows `rows` of `table`.
Result<QueryResult> Aggregate(const Table& table,
                              const std::vector<size_t>& rows,
                              const Query& query);

/// Convenience: filter + aggregate over a joined table.
Result<QueryResult> FilterAndAggregate(const Table& table,
                                       const Query& query);

}  // namespace restore

#endif  // RESTORE_EXEC_AGGREGATE_H_
