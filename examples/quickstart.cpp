// Quickstart: complete a two-table database where child tuples were removed
// with a systematic bias, then compare an aggregate on the incomplete vs the
// completed data.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/engine.h"

using namespace restore;

int main() {
  // 1. A "true" database we normally would not have: table_a (complete) and
  //    table_b (child of table_a). In practice you start from step 2.
  SyntheticConfig data_config;
  data_config.num_parents = 400;
  data_config.predictability = 0.9;  // b is mostly determined by a
  auto complete = GenerateSynthetic(data_config);
  if (!complete.ok()) {
    std::fprintf(stderr, "%s\n", complete.status().ToString().c_str());
    return 1;
  }

  // 2. Derive the incomplete database: 50% of table_b's tuples are missing,
  //    correlated with the attribute value (systematic missingness).
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.6;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  if (!incomplete.ok()) return 1;
  // Only 30% of the true tuple factors are known.
  (void)ThinTupleFactors(&*incomplete, 0.3, 7);

  // 3. Annotate the schema: which table is incomplete?
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");

  // 4. Train the completion models and answer a query on the completed data.
  EngineConfig config;
  CompletionEngine engine(&*incomplete, annotation, config);
  if (auto s = engine.TrainModels(); !s.ok()) {
    std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";
  auto truth = ExecuteSql(*complete, sql);
  auto naive = ExecuteSql(*incomplete, sql);
  auto completed = engine.ExecuteCompletedSql(sql);
  if (!truth.ok() || !naive.ok() || !completed.ok()) return 1;

  std::printf("query: %s\n\n", sql.c_str());
  std::printf("%-8s %10s %12s %10s\n", "group", "truth", "incomplete",
              "completed");
  for (const auto& [key, values] : truth->groups) {
    const auto n = naive->groups.count(key) ? naive->groups.at(key)[0] : 0.0;
    const auto c =
        completed->groups.count(key) ? completed->groups.at(key)[0] : 0.0;
    std::printf("%-8s %10.0f %12.0f %10.0f\n", key[0].c_str(), values[0], n,
                c);
  }
  std::printf("\navg relative error incomplete: %.3f\n",
              AverageRelativeError(*truth, *naive));
  std::printf("avg relative error completed:  %.3f\n",
              AverageRelativeError(*truth, *completed));
  return 0;
}
