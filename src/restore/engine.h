#ifndef RESTORE_RESTORE_ENGINE_H_
#define RESTORE_RESTORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/query.h"
#include "restore/annotation.h"
#include "restore/cache.h"
#include "restore/db.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "restore/path_selection.h"
#include "storage/database.h"

namespace restore {

/// DEPRECATED single-threaded facade, kept as a thin shim over restore::Db
/// so existing callers (figure benches, older tests) keep compiling. New
/// code should use Db::Open + Session (restore/db.h): it adds concurrent
/// sessions, prepared queries, async execution, and model persistence.
///
/// Typical legacy usage:
///   CompletionEngine engine(&db, annotation, config);
///   RETURN_IF_ERROR(engine.TrainModels());
///   auto result = engine.ExecuteCompletedSql(
///       "SELECT AVG(rent) FROM neighborhood NATURAL JOIN apartment "
///       "GROUP BY state;");
class CompletionEngine {
 public:
  using Candidate = Db::Candidate;

  /// `db` must outlive the engine. Candidate enumeration happens here (via
  /// Db::Open); any enumeration error is reported by TrainModels().
  CompletionEngine(const Database* db, SchemaAnnotation annotation,
                   EngineConfig config);

  /// Historically trained everything up front; the Db facade enumerates at
  /// open and trains lazily, so this only reports open errors.
  Status TrainModels();

  /// Executes `query` over the completed database (incompleteness joins for
  /// incomplete tables, normal execution otherwise).
  Result<QueryResult> ExecuteCompleted(const Query& query);
  Result<QueryResult> ExecuteCompletedSql(const std::string& sql);

  /// Returns the completed version of one incomplete table: its existing
  /// tuples plus the synthesized attribute columns.
  Result<Table> CompleteTable(const std::string& target);

  /// Completes via a specific (already trained or new) path — used by the
  /// evaluation harness to score individual models.
  Result<CompletionResult> CompleteViaPath(
      const std::vector<std::string>& path,
      const CompletionOptions& options = CompletionOptions());

  /// Candidates for `target` (path -> model); models train lazily.
  Result<std::vector<Candidate>> CandidatesFor(const std::string& target);

  /// The path selected for `target` by the configured strategy.
  Result<std::vector<std::string>> SelectedPathFor(const std::string& target);

  /// Access to a trained model by its path (trains lazily if absent).
  Result<const PathModel*> ModelForPath(const std::vector<std::string>& path);

  const SchemaAnnotation& annotation() const { return annotation_; }
  const EngineConfig& config() const { return config_; }
  CompletionCache& cache();

  /// Total wall-clock seconds spent training models so far (Fig 11).
  double total_train_seconds() const;

  /// The underlying thread-safe facade (nullptr only if opening failed).
  const std::shared_ptr<Db>& db() const { return db_; }

 private:
  /// Returns the wrapped Db or the error Open produced.
  Result<Db*> GetDb();

  SchemaAnnotation annotation_;
  EngineConfig config_;
  std::shared_ptr<Db> db_;
  Status open_status_;
  /// Fallback so cache() stays callable when Open failed.
  CompletionCache fallback_cache_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_ENGINE_H_
