// Closed-loop load harness for the HTTP serving layer: starts an in-process
// epoll server over a housing Db, opens hundreds of keep-alive connections,
// and drives them from closed-loop client threads (every connection stays
// open for the whole run; each thread cycles through its share of the
// sockets, one request in flight per thread).
//
// Two phases are measured and written to BENCH_server.json:
//   ServerHealthz/conns:N  pure HTTP+event-loop overhead (GET /healthz)
//   ServerQuery/conns:N    end-to-end SQL round trips (POST /v1/query with a
//                          classical-path query, chunked JSON response)
// Each record carries qps, p50_ms/p95_ms/p99_ms, requests, connections, and
// errors counters; real_ns is the mean per-request latency.
//
//   $ ./build/bench_server            # 200 connections, 8 client threads
//   $ BENCH_SERVER_CONNS=400 ./build/bench_server
//
// The bench fails (exit 1) if any request errors or the connection target
// cannot be sustained — it doubles as the ">= 200 concurrent keep-alive
// connections" acceptance check.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/server.h"

namespace restore {
namespace bench {
namespace {

/// Classical-path query (neighborhood is complete under H1): no model
/// training or sampling, so the bench stresses the serving layer, not the
/// completion engine.
const char kQuerySql[] = "SELECT COUNT(*) FROM neighborhood GROUP BY state;";

struct ClientConn {
  int fd = -1;
  std::string carry;  // surplus bytes between responses
};

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one response (Content-Length or chunked framing); returns the HTTP
/// status or 0 on error. Surplus pipelined bytes stay in conn->carry.
int ReadResponse(ClientConn* conn) {
  std::string buf = std::move(conn->carry);
  conn->carry.clear();
  char tmp[8192];
  auto need_more = [&]() -> bool {
    const ssize_t n = ::recv(conn->fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf.append(tmp, static_cast<size_t>(n));
    return true;
  };

  size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (!need_more()) return 0;
  }
  if (buf.compare(0, 9, "HTTP/1.1 ") != 0) return 0;
  const int status = std::atoi(buf.c_str() + 9);
  const std::string head = buf.substr(0, head_end + 4);
  size_t pos = head_end + 4;

  if (head.find("Transfer-Encoding: chunked") != std::string::npos) {
    while (true) {
      size_t line_end;
      while ((line_end = buf.find("\r\n", pos)) == std::string::npos) {
        if (!need_more()) return 0;
      }
      const size_t size =
          std::strtoul(buf.substr(pos, line_end - pos).c_str(), nullptr, 16);
      pos = line_end + 2;
      while (buf.size() < pos + size + 2) {
        if (!need_more()) return 0;
      }
      pos += size + 2;
      if (size == 0) {
        conn->carry = buf.substr(pos);
        return status;
      }
    }
  }

  size_t content_length = 0;
  const size_t cl = head.find("Content-Length: ");
  if (cl != std::string::npos) {
    content_length = std::strtoul(head.c_str() + cl + 16, nullptr, 10);
  }
  while (buf.size() < pos + content_length) {
    if (!need_more()) return 0;
  }
  conn->carry = buf.substr(pos + content_length);
  return status;
}

struct PhaseResult {
  std::vector<double> latencies_ns;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
};

/// Drives `total_requests` requests across `conns` from `num_threads`
/// closed-loop client threads. Every connection stays open for the whole
/// phase; each thread cycles through its share of the sockets.
PhaseResult RunPhase(std::vector<ClientConn>* conns, size_t num_threads,
                     size_t total_requests, const std::string& request,
                     int expect_status) {
  PhaseResult result;
  std::vector<std::vector<double>> per_thread_lat(num_threads);
  std::vector<uint64_t> per_thread_err(num_threads, 0);
  // Signed so concurrent decrements past zero stay negative (no wraparound).
  std::atomic<int64_t> budget{static_cast<int64_t>(total_requests)};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      auto& latencies = per_thread_lat[t];
      size_t i = t;  // connection cursor, strided so shares don't overlap
      while (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
        ClientConn& conn = (*conns)[i % conns->size()];
        i += num_threads;
        const auto t0 = std::chrono::steady_clock::now();
        int status = 0;
        if (SendAll(conn.fd, request)) status = ReadResponse(&conn);
        const auto t1 = std::chrono::steady_clock::now();
        if (status != expect_status) {
          ++per_thread_err[t];
          continue;
        }
        latencies.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (size_t t = 0; t < num_threads; ++t) {
    result.errors += per_thread_err[t];
    result.latencies_ns.insert(result.latencies_ns.end(),
                               per_thread_lat[t].begin(),
                               per_thread_lat[t].end());
  }
  return result;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t index = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted->size() - 1)));
  return (*sorted)[index];
}

BenchRecord MakeRecord(const std::string& phase, size_t connections,
                       const PhaseResult& result) {
  BenchRecord record;
  record.name = phase + "/conns:" + std::to_string(connections);
  std::vector<double> sorted = result.latencies_ns;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  const double count = sorted.empty() ? 1.0 : sorted.size();
  record.real_ns = sum / count;
  record.cpu_ns = record.real_ns;
  record.iterations = static_cast<int64_t>(sorted.size());
  record.counters["qps"] =
      result.wall_seconds > 0 ? sorted.size() / result.wall_seconds : 0.0;
  record.counters["p50_ms"] = Percentile(&sorted, 0.50) / 1e6;
  record.counters["p95_ms"] = Percentile(&sorted, 0.95) / 1e6;
  record.counters["p99_ms"] = Percentile(&sorted, 0.99) / 1e6;
  record.counters["requests"] = static_cast<double>(sorted.size());
  record.counters["connections"] = static_cast<double>(connections);
  record.counters["errors"] = static_cast<double>(result.errors);
  return record;
}

void PrintRecord(const BenchRecord& record) {
  std::printf("%-28s qps=%8.0f  p50=%7.3fms  p95=%7.3fms  p99=%7.3fms  "
              "requests=%.0f errors=%.0f\n",
              record.name.c_str(), record.counters.at("qps"),
              record.counters.at("p50_ms"), record.counters.at("p95_ms"),
              record.counters.at("p99_ms"), record.counters.at("requests"),
              record.counters.at("errors"));
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return static_cast<size_t>(std::strtoul(v, nullptr, 10));
}

int Run() {
  const size_t connections = EnvSize("BENCH_SERVER_CONNS", 200);
  const size_t client_threads = EnvSize("BENCH_SERVER_THREADS", 8);

  // One housing tenant behind the server, engine sized like the unit tests.
  auto run = MakeSetupRun("H1", 0.5, 0.5, 0.25, 4242);
  if (!run.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  auto db = OpenBenchDb(*run, BenchEngineConfig());
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  server::TenantRegistry tenants;
  if (auto s = tenants.Add("housing", *db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  server::ServerConfig config;
  config.port = 0;  // ephemeral
  config.event_threads = 2;
  config.query_threads = 4;
  config.max_inflight_queries = 64;
  server::HttpServer http(&tenants, config);
  if (auto s = http.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<ClientConn> conns(connections);
  for (size_t i = 0; i < connections; ++i) {
    conns[i].fd = ConnectTo(http.port());
    if (conns[i].fd < 0) {
      std::fprintf(stderr, "connection %zu of %zu failed\n", i, connections);
      return 1;
    }
  }

  const std::string healthz_req =
      "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n";
  const std::string query_req =
      "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
      std::to_string(sizeof(kQuerySql) - 1) + "\r\n\r\n" + kQuerySql;

  // Warm up (first query populates the completion cache / result paths).
  RunPhase(&conns, client_threads, 2 * client_threads, query_req, 200);

  const size_t healthz_requests = EnvSize("BENCH_SERVER_HEALTHZ_REQS", 20000);
  const size_t query_requests = EnvSize("BENCH_SERVER_QUERY_REQS", 2000);
  const PhaseResult healthz =
      RunPhase(&conns, client_threads, healthz_requests, healthz_req, 200);
  const PhaseResult query =
      RunPhase(&conns, client_threads, query_requests, query_req, 200);

  const server::HttpServerStats stats = http.stats();
  std::printf("server: %llu connections accepted, %llu active, "
              "%llu requests, %llu queries admitted, %llu shed\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_active),
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.queries_admitted),
              static_cast<unsigned long long>(stats.queries_shed_global +
                                              stats.queries_shed_tenant));

  std::vector<BenchRecord> records;
  records.push_back(MakeRecord("ServerHealthz", connections, healthz));
  records.push_back(MakeRecord("ServerQuery", connections, query));
  // Queue-mode admission counters ride on the query record (0 in the
  // default shed-mode bench; the gate checks they are emitted).
  records.back().counters["admission_queued"] =
      static_cast<double>(stats.admission_queued);
  records.back().counters["admission_queue_timeouts"] =
      static_cast<double>(stats.admission_queue_timeouts);
  for (const BenchRecord& record : records) PrintRecord(record);

  int exit_code = 0;
  if (healthz.errors + query.errors > 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(healthz.errors +
                                                 query.errors));
    exit_code = 1;
  }
  if (stats.connections_active < connections) {
    std::fprintf(stderr,
                 "FAIL: only %llu of %zu connections still alive\n",
                 static_cast<unsigned long long>(stats.connections_active),
                 connections);
    exit_code = 1;
  }

  for (ClientConn& conn : conns) ::close(conn.fd);
  http.Stop();

  if (auto s = WriteBenchJson("BENCH_server.json", records); !s.ok()) {
    std::fprintf(stderr, "writing BENCH_server.json failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote BENCH_server.json\n");
  return exit_code;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
