#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace restore {

namespace {

/// Bin index of `v` on the grid [lo, hi] x bins, clamped to the edge bins.
size_t BinOf(double v, double lo, double hi, size_t bins) {
  if (bins <= 1 || !(hi > lo)) return 0;
  if (v <= lo) return 0;
  if (v >= hi) return bins - 1;
  const double t = (v - lo) / (hi - lo);
  size_t b = static_cast<size_t>(t * static_cast<double>(bins));
  return b < bins ? b : bins - 1;
}

void FillNumeric(ColumnSummary* s, const Column& col) {
  const size_t bins = s->counts.size();
  const size_t n = col.size();
  for (size_t r = 0; r < n; ++r) {
    if (col.IsNull(r)) {
      ++s->nulls;
      continue;
    }
    ++s->counts[BinOf(col.GetNumeric(r), s->lo, s->hi, bins)];
    ++s->total;
  }
}

void FillCategorical(ColumnSummary* s, const Column& col,
                     const std::vector<int64_t>& code_to_bucket) {
  const size_t other = s->counts.size() - 1;
  const size_t n = col.size();
  for (size_t r = 0; r < n; ++r) {
    const int64_t code = col.GetCode(r);
    if (code == kNullInt64) {
      ++s->nulls;
      continue;
    }
    size_t bucket = other;
    if (code >= 0 &&
        static_cast<size_t>(code) < code_to_bucket.size() &&
        code_to_bucket[static_cast<size_t>(code)] >= 0) {
      bucket = static_cast<size_t>(code_to_bucket[static_cast<size_t>(code)]);
    }
    ++s->counts[bucket];
    ++s->total;
  }
}

}  // namespace

ColumnSummary SummarizeColumn(const std::string& table, const Column& col,
                              size_t max_bins) {
  ColumnSummary s;
  s.table = table;
  s.column = col.name();
  if (col.type() == ColumnType::kCategorical) {
    s.kind = ColumnSummary::Kind::kCategorical;
    const Dictionary& dict = *col.dictionary();
    const size_t kept = std::min(dict.size(), kMaxSummaryLabels);
    s.labels.reserve(kept);
    std::vector<int64_t> code_to_bucket(dict.size(), -1);
    for (size_t c = 0; c < kept; ++c) {
      s.labels.push_back(dict.ValueOf(static_cast<int64_t>(c)));
      code_to_bucket[c] = static_cast<int64_t>(c);
    }
    s.counts.assign(s.labels.size() + 1, 0.0);
    FillCategorical(&s, col, code_to_bucket);
    return s;
  }
  s.kind = ColumnSummary::Kind::kNumeric;
  double lo = 0.0, hi = 0.0;
  bool seen = false;
  const size_t n = col.size();
  for (size_t r = 0; r < n; ++r) {
    if (col.IsNull(r)) continue;
    const double v = col.GetNumeric(r);
    if (!seen || v < lo) lo = seen ? std::min(lo, v) : v;
    if (!seen || v > hi) hi = seen ? std::max(hi, v) : v;
    seen = true;
  }
  s.lo = lo;
  s.hi = hi;
  s.counts.assign(std::max<size_t>(1, max_bins), 0.0);
  FillNumeric(&s, col);
  return s;
}

ColumnSummary SummarizeAgainst(const ColumnSummary& ref, const Column& col) {
  ColumnSummary s;
  s.table = ref.table;
  s.column = ref.column;
  s.kind = ref.kind;
  s.lo = ref.lo;
  s.hi = ref.hi;
  s.labels = ref.labels;
  s.counts.assign(ref.counts.size(), 0.0);
  if (ref.kind == ColumnSummary::Kind::kCategorical) {
    if (col.type() != ColumnType::kCategorical) return s;
    // Map this column's codes to the reference buckets by label string —
    // the two columns may hold different (e.g. copied) dictionaries.
    const Dictionary& dict = *col.dictionary();
    std::vector<int64_t> code_to_bucket(dict.size(), -1);
    for (size_t c = 0; c < dict.size(); ++c) {
      const std::string& value = dict.ValueOf(static_cast<int64_t>(c));
      for (size_t l = 0; l < ref.labels.size(); ++l) {
        if (ref.labels[l] == value) {
          code_to_bucket[c] = static_cast<int64_t>(l);
          break;
        }
      }
    }
    FillCategorical(&s, col, code_to_bucket);
    return s;
  }
  if (col.type() == ColumnType::kCategorical) return s;
  FillNumeric(&s, col);
  return s;
}

std::vector<ColumnSummary> SummarizeTables(
    const Database& db, const std::vector<std::string>& tables,
    size_t max_bins) {
  std::vector<ColumnSummary> out;
  for (const auto& name : tables) {
    Result<const Table*> table = db.GetTable(name);
    if (!table.ok()) continue;
    for (const Column& col : (*table)->columns()) {
      out.push_back(SummarizeColumn(name, col, max_bins));
    }
  }
  return out;
}

void ColumnSummary::Save(BinaryWriter* w) const {
  w->Str(table);
  w->Str(column);
  w->U8(static_cast<uint8_t>(kind));
  w->F64(lo);
  w->F64(hi);
  w->VecF64(counts);
  w->VecStr(labels);
  w->U64(total);
  w->U64(nulls);
}

Result<ColumnSummary> ColumnSummary::Load(BinaryReader* r) {
  ColumnSummary s;
  s.table = r->Str();
  s.column = r->Str();
  const uint8_t kind = r->U8();
  s.lo = r->F64();
  s.hi = r->F64();
  s.counts = r->VecF64();
  s.labels = r->VecStr();
  s.total = r->U64();
  s.nulls = r->U64();
  RESTORE_RETURN_IF_ERROR(r->status());
  if (kind > static_cast<uint8_t>(Kind::kCategorical)) {
    return Status::InvalidArgument("column summary has an unknown kind");
  }
  s.kind = static_cast<Kind>(kind);
  if (s.kind == Kind::kCategorical &&
      s.counts.size() != s.labels.size() + 1) {
    return Status::InvalidArgument(
        "categorical column summary has mismatched label/count sizes");
  }
  return s;
}

}  // namespace restore
