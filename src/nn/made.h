#ifndef RESTORE_NN_MADE_H_
#define RESTORE_NN_MADE_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/inference_scratch.h"
#include "nn/layers.h"
#include "nn/matrix.h"

namespace restore {

/// Configuration of a MADE (Masked Autoencoder for Distribution Estimation)
/// network over a fixed attribute ordering.
struct MadeConfig {
  /// Vocabulary size of each attribute, in autoregressive order.
  std::vector<int> vocab_sizes;
  /// Dimensionality of the per-attribute input embeddings.
  size_t embed_dim = 16;
  /// Width of the hidden layers.
  size_t hidden_dim = 64;
  /// Number of hidden layers (>= 1). Layers 2..n use residual connections.
  size_t num_layers = 2;
  /// Dimensionality of the conditioning context vector (0 = unconditional).
  /// The context bypasses the autoregressive masks: it is visible to every
  /// output. SSAR models feed their tree embedding through this input.
  size_t context_dim = 0;
  /// Opt-in incremental sampling: between consecutive attributes of a
  /// SampleRange pass, only the just-sampled attribute's embedding changed,
  /// so the first hidden layer is updated with a delta GEMM
  /// (h1 += (e_new - e_old) · W1[block]) instead of recomputed. The delta
  /// accumulates in a different order than a fresh GEMM, so results are
  /// tolerance-equivalent — NOT bit-identical — to the default sliced path;
  /// hence off by default (the paper pipeline keeps bit-reproducibility).
  bool incremental_sampling = false;
};

/// One request of a coalesced multi-request sampling pass
/// (MadeModel::SampleRangeBatched). Rows of all requests are stacked into
/// one minibatch; each request keeps its own attribute window, recording
/// target, and pre-drawn uniforms, so its sampled codes are bit-identical
/// to a solo SampleRange call with the same rng state.
struct MadeSampleSpec {
  /// The request's codes, [rows x num_attrs]; sampled columns are written
  /// back on completion (left untouched once `dead` is set).
  IntMatrix* codes = nullptr;
  /// Conditioning rows, [rows x context_dim]; ignored (may be empty) for
  /// unconditional models.
  const Matrix* context = nullptr;
  size_t first_attr = 0;
  size_t end_attr = 0;
  /// As in SampleRange: when in [first_attr, end_attr), that attribute's
  /// predictive distribution is stored into `recorded`.
  int record_attr = -1;
  Matrix* recorded = nullptr;
  /// Pre-drawn uniforms, attr-major then row-major —
  /// uniforms[(a - first_attr) * rows + r] — exactly the order SampleRange
  /// consumes them from its rng, so pre-drawing leaves the caller's stream
  /// in the identical state.
  const double* uniforms = nullptr;
  /// Cooperative abort: the poll hook may set this between attributes; the
  /// request's remaining attributes are skipped and nothing is scattered
  /// back. Other requests are unaffected (every row is computed from its
  /// own codes only).
  bool dead = false;
};

/// One request of a coalesced predictive-distribution pass
/// (MadeModel::PredictDistributionBatched).
struct MadePredictSpec {
  const IntMatrix* codes = nullptr;   // [rows x num_attrs]
  const Matrix* context = nullptr;    // [rows x context_dim] or empty
  size_t attr = 0;
  Matrix* probs = nullptr;            // out: [rows x vocab(attr)]
};

/// MADE with per-attribute embeddings (the architecture of [14]/naru [40]
/// that the paper builds its completion models on): the network maps a batch
/// of discretized attribute rows to, for each attribute i, the logits of the
/// conditional distribution p(a_i | a_<i [, context]).
///
/// Masking scheme: input units of attribute i carry degree i; hidden units
/// carry degrees cycling over [0, n-2]; a connection into a hidden unit
/// requires to_degree >= from_degree, and into the output block of attribute
/// i requires degree < i. The first attribute's output therefore depends only
/// on the bias and the context, as required.
class MadeModel {
 public:
  MadeModel(MadeConfig config, Rng& rng);

  const MadeConfig& config() const { return config_; }
  size_t num_attrs() const { return config_.vocab_sizes.size(); }
  int vocab_size(size_t attr) const { return config_.vocab_sizes[attr]; }
  /// Column offset of attribute `attr`'s logits block.
  size_t attr_offset(size_t attr) const { return offsets_[attr]; }
  size_t total_vocab() const { return offsets_.back(); }

  /// Computes logits [batch x total_vocab] for all attributes.
  /// `context` must be [batch x context_dim] (ignored when context_dim == 0;
  /// pass an empty Matrix). Caches activations for Backward unless
  /// `for_backward` is false (inference-only passes skip the input
  /// snapshots). Activation buffers are reused across calls.
  ///
  /// This is the TRAINING entry point: it uses the model's persistent member
  /// scratch, so it is single-threaded per model (the Db facade guarantees
  /// one trainer per model). Inference uses the const overloads below.
  void Forward(const IntMatrix& codes, const Matrix& context, Matrix* logits,
               bool for_backward = true);

  /// Reentrant inference forward: all per-call buffers live in `scratch`,
  /// the model is read-only, so any number of threads can run concurrent
  /// passes over one model — each with its own scratch. Requires
  /// FinalizeForInference() after the last parameter update. Produces
  /// bit-identical logits to the training Forward.
  void Forward(const IntMatrix& codes, const Matrix& context, Matrix* logits,
               MadeScratch* scratch) const;

  /// Mean (over batch) of the summed per-attribute cross-entropies for
  /// attributes in [first_attr, num_attrs). Writes the matching logits
  /// gradient into `dlogits`.
  float NllLoss(const Matrix& logits, const IntMatrix& targets,
                size_t first_attr, Matrix* dlogits) const;

  /// Loss-only variant (no gradient) used for test-set evaluation.
  float NllLossOnly(const Matrix& logits, const IntMatrix& targets,
                    size_t first_attr) const;

  /// Weighted variant: `weights` is [batch x num_attrs] with non-negative
  /// per-cell loss weights (0 masks a cell out, e.g. unobserved tuple
  /// factors). Each attribute's loss is normalized by its total weight.
  /// Pass dlogits == nullptr for evaluation only.
  float NllLossWeighted(const Matrix& logits, const IntMatrix& targets,
                        size_t first_attr, const Matrix& weights,
                        Matrix* dlogits) const;

  /// Loss of a single attribute (mean over batch); used for per-attribute
  /// diagnostics. No gradient.
  float AttrNll(const Matrix& logits, const IntMatrix& targets,
                size_t attr) const;

  /// Backpropagates from `dlogits` (accumulating parameter gradients).
  /// If the model is conditional, `*dcontext` receives the context gradient
  /// ([batch x context_dim]); pass nullptr when not needed.
  void Backward(const Matrix& dlogits, Matrix* dcontext);

  /// Samples attributes [first_attr, num_attrs) in place, conditioned on the
  /// first `first_attr` columns of `codes` (and the context).
  void SampleConditional(IntMatrix* codes, const Matrix& context,
                         size_t first_attr, Rng& rng);

  /// Samples only the attribute range [first_attr, end_attr) in place.
  /// If `record_attr` is in range, the predictive distribution of that
  /// attribute is stored into `recorded` ([batch x vocab(record_attr)]).
  void SampleRange(IntMatrix* codes, const Matrix& context, size_t first_attr,
                   size_t end_attr, Rng& rng, int record_attr = -1,
                   Matrix* recorded = nullptr);

  /// Reentrant variant (see the scratch Forward); bit-identical to the
  /// member-scratch SampleRange for the same rng state.
  ///
  /// `should_stop` is the cooperative cancellation hook: it is evaluated
  /// once per attribute (one attribute's pass over the batch is one
  /// "sampling batch"), on the calling thread, BEFORE the attribute's
  /// forward pass and rng draws. When it returns true, sampling stops and
  /// the remaining attribute codes are left unspecified — the caller aborts
  /// the whole completion. When it never fires, the sampled codes and the
  /// rng consumption are bit-identical to a call without the hook.
  void SampleRange(IntMatrix* codes, const Matrix& context, size_t first_attr,
                   size_t end_attr, Rng& rng, int record_attr,
                   Matrix* recorded, MadeScratch* scratch,
                   const std::function<bool()>& should_stop = {}) const;

  /// Coalesced multi-request sampling: stacks every spec's rows into one
  /// minibatch in `scratch` and runs ONE sliced forward pass per attribute
  /// of the union window, so N concurrent requests pay N-fold GEMM width
  /// instead of N passes. Per-request outputs are bit-identical to solo
  /// SampleRange calls: each stacked row's logits depend only on that row's
  /// own codes (MADE masking; rows outside their request's window are
  /// computed and discarded), the softmax/pick is row-local, and the
  /// uniforms come pre-drawn per request (see MadeSampleSpec::uniforms).
  /// `poll`, when set, is invoked once per attribute before the forward
  /// pass and may mark specs dead (cooperative cancellation; a dead
  /// request's codes/recorded are left unspecified, batch-mates keep their
  /// exact values). Requires incremental_sampling == false (that path
  /// carries cross-attribute scratch state and is only
  /// tolerance-equivalent); callers gate on it.
  void SampleRangeBatched(std::vector<MadeSampleSpec>* specs,
                          MadeScratch* scratch,
                          const std::function<void()>& poll = {}) const;

  /// Coalesced predictive distributions: one stacked trunk pass, then one
  /// sliced output emission per DISTINCT attribute among the specs. Each
  /// spec's probs are bit-identical to a solo PredictDistribution call.
  void PredictDistributionBatched(std::vector<MadePredictSpec>* specs,
                                  MadeScratch* scratch) const;

  /// Predictive distribution of a single attribute given its predecessors:
  /// fills `probs` [batch x vocab(attr)].
  void PredictDistribution(const IntMatrix& codes, const Matrix& context,
                           size_t attr, Matrix* probs);

  /// Reentrant variant (see the scratch Forward).
  void PredictDistribution(const IntMatrix& codes, const Matrix& context,
                           size_t attr, Matrix* probs,
                           MadeScratch* scratch) const;

  /// Freezes the current parameters for reentrant inference: refreshes the
  /// cached masked weights (W * M) of every masked layer. Call once after
  /// training (or after loading parameters); the const inference overloads
  /// read those caches without refreshing them. The training Forward keeps
  /// refreshing per call, so training never needs this.
  void FinalizeForInference();

  void CollectParams(std::vector<Param*>* params);

  /// Number of scalar parameters (for reporting / Fig 11 context).
  size_t NumParameters();

 private:
  Matrix BuildInputMask() const;
  Matrix BuildHiddenMask() const;
  Matrix BuildOutputMask() const;
  int HiddenDegree(size_t unit) const;

  /// Embeds + runs all hidden layers into `scratch`; returns the final
  /// hidden activation. Shared trunk of the const Forward and the sliced
  /// logits paths (value-identical to the training Forward; the context-free
  /// path fuses bias/relu/residual into the GEMM store phase).
  /// `changed_attr` >= 0 re-gathers only that attribute's embedding block —
  /// valid only when scratch->x0 already embeds `codes` with at most that
  /// column changed (the SampleRange loop invariant).
  const Matrix* ForwardTrunk(const IntMatrix& codes, const Matrix& context,
                             MadeScratch* scratch,
                             int changed_attr = -1) const;
  /// Runs hidden layers [start_layer, num_layers) from `prev` (which must
  /// be the post-activation of layer start_layer - 1).
  const Matrix* ForwardHiddenFrom(const Matrix* prev, size_t start_layer,
                                  const Matrix& context,
                                  MadeScratch* scratch) const;
  /// Output stage shared by the sliced paths: writes attribute `attr`'s
  /// logit block (plus the context projection's slice) from the final
  /// hidden activation.
  void EmitLogitsSlice(const Matrix& hidden, const Matrix& context,
                       size_t attr, Matrix* logits,
                       MadeScratch* scratch) const;
  /// Computes ONLY columns [offsets_[attr], offsets_[attr+1]) of the logits
  /// buffer ([batch x total_vocab]; other columns are left untouched). The
  /// default sampling path: bit-identical to slicing a full Forward.
  /// `changed_attr` forwards to ForwardTrunk (same invariant).
  void ForwardLogitsSlice(const IntMatrix& codes, const Matrix& context,
                          size_t attr, int changed_attr, Matrix* logits,
                          MadeScratch* scratch) const;
  /// Incremental variant (config_.incremental_sampling): `changed_attr` < 0
  /// runs a cold-start pass that additionally captures the first layer's
  /// pre-activation in scratch->z1_lin; otherwise only that attribute's
  /// embedding delta is pushed through the first layer before the upper
  /// layers run in full. Tolerance-equivalent to ForwardLogitsSlice.
  void ForwardLogitsSliceIncremental(const IntMatrix& codes,
                                     const Matrix& context, size_t attr,
                                     int changed_attr, Matrix* logits,
                                     MadeScratch* scratch) const;

  MadeConfig config_;
  std::vector<size_t> offsets_;  // prefix sums of vocab sizes (n+1 entries)

  EmbeddingSet embed_;
  std::vector<MaskedDense> hidden_;  // num_layers masked layers
  std::vector<Dense> ctx_hidden_;    // per-layer context projections
  MaskedDense out_;
  Dense ctx_out_;

  // Cached activations. The buffers persist across Forward calls (shapes are
  // stable within a training run), so steady-state forward/backward passes
  // allocate nothing. h_[0] is unused: layer 0 has no residual input, its
  // post-activation IS relu_[0].
  Matrix x0_;                  // embedded input
  std::vector<Matrix> relu_;   // relu(z_l) per layer
  std::vector<Matrix> h_;      // post-residual activation per layer (l >= 1)
  Matrix ctx_scratch_;         // Forward: per-layer context projection
  Matrix ctx_out_scratch_;     // Forward: output-layer context projection
  Matrix dh_scratch_;          // Backward: gradient wrt h_[l]
  Matrix dz_scratch_;          // Backward: gradient through the ReLU branch
  Matrix dprev_scratch_;       // Backward: gradient wrt the layer input
  Matrix dctx_scratch_;        // Backward: per-layer context gradient
  // Member arena backing the non-scratch SampleRange/PredictDistribution
  // convenience overloads (training-time and single-owner callers only;
  // concurrent inference brings caller-owned scratch instead).
  MadeScratch infer_scratch_;
  bool has_context_ = false;
};

}  // namespace restore

#endif  // RESTORE_NN_MADE_H_
