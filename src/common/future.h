#ifndef RESTORE_COMMON_FUTURE_H_
#define RESTORE_COMMON_FUTURE_H_

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/thread_pool.h"

namespace restore {

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::function<T()> fn;   // cleared once claimed
  bool claimed = false;
  bool done = false;
  std::optional<T> value;

  /// Claims and runs the task if nobody has yet. Both pool workers and
  /// waiting consumers call this, so the task makes progress even on a pool
  /// with zero workers (the consumer runs it inline in Get()).
  void TryRun() {
    std::function<T()> task;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (claimed) return;
      claimed = true;
      task = std::move(fn);
      fn = nullptr;
    }
    T result = task();
    {
      std::lock_guard<std::mutex> lock(mu);
      value.emplace(std::move(result));
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace internal

/// A minimal single-consumer future for asynchronous query execution on the
/// shared ThreadPool. Unlike std::async there is no detached thread: the task
/// is claimed either by a pool worker or — if none got to it first, e.g. on a
/// single-core machine with an empty pool — by the consumer inside Get().
/// This guarantees progress at any pool width and cannot deadlock when every
/// worker is busy.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  /// True if the result is already available (non-blocking).
  bool IsReady() const {
    if (state_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  /// Blocks until the result is available and returns it (moves on rvalue
  /// use; the future stays valid and Get may be called again on an lvalue).
  /// Must not be called on a default-constructed (invalid) future.
  T& Get() {
    assert(state_ != nullptr && "Get() on an invalid Future");
    state_->TryRun();  // run inline if no worker claimed the task yet
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    return *state_->value;
  }

  /// Waits up to `timeout` for the result WITHOUT claiming the task: unlike
  /// Get(), the caller never runs the work inline, so this returns false on
  /// timeout even if nobody has started the task yet (e.g. a zero-worker
  /// pool). Returns true once the result is available.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) {
    assert(state_ != nullptr && "WaitFor() on an invalid Future");
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(lock, timeout,
                               [this] { return state_->done; });
  }

  /// Wraps an already-computed value (e.g. an early validation error).
  static Future<T> MakeReady(T value) {
    Future<T> f;
    f.state_ = std::make_shared<internal::FutureState<T>>();
    f.state_->claimed = true;
    f.state_->done = true;
    f.state_->value.emplace(std::move(value));
    return f;
  }

  /// Schedules `fn` on `pool` and returns the future of its result. With
  /// zero workers the task is deferred until Get().
  static Future<T> Async(ThreadPool& pool, std::function<T()> fn) {
    Future<T> f;
    f.state_ = std::make_shared<internal::FutureState<T>>();
    f.state_->fn = std::move(fn);
    if (pool.num_threads() > 0) {
      auto state = f.state_;
      pool.Run([state] { state->TryRun(); });
    }
    return f;
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace restore

#endif  // RESTORE_COMMON_FUTURE_H_
