// Parameterized property tests for the incompleteness injector: keep rates
// are respected across the full parameter grid, and stronger removal
// correlations produce monotonically stronger biases.

#include <gtest/gtest.h>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"

namespace restore {
namespace {

class KeepRateGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KeepRateGrid, KeepRateRespectedWithinTolerance) {
  const auto& [keep, corr] = GetParam();
  SyntheticConfig config;
  config.num_parents = 700;
  config.seed = 400;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  const size_t before = (*db->GetTable("table_b").value()).NumRows();
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = keep;
  removal.removal_correlation = corr;
  removal.seed = 401;
  auto reduced = ApplyBiasedRemoval(*db, removal);
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  const double ratio =
      static_cast<double>((*reduced->GetTable("table_b").value()).NumRows()) /
      static_cast<double>(before);
  EXPECT_NEAR(ratio, keep, 0.07) << "keep=" << keep << " corr=" << corr;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KeepRateGrid,
    ::testing::Combine(::testing::Values(0.2, 0.4, 0.6, 0.8),
                       ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8)));

class CorrelationMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationMonotonicity, StrongerCorrelationStrongerBias) {
  const double keep = GetParam();
  SyntheticConfig config;
  config.num_parents = 700;
  config.seed = 410;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  // Find the most frequent b value (the auto-picked biased value).
  auto frac_after = [&](double corr) {
    BiasedRemovalConfig removal;
    removal.table = "table_b";
    removal.column = "b";
    removal.keep_rate = keep;
    removal.removal_correlation = corr;
    removal.seed = 411;
    auto reduced = ApplyBiasedRemoval(*db, removal);
    EXPECT_TRUE(reduced.ok());
    // Fraction of the globally most frequent value after removal.
    const Table& truth = *db->GetTable("table_b").value();
    const Column* col = truth.GetColumn("b").value();
    std::vector<size_t> counts(col->dictionary()->size(), 0);
    for (size_t r = 0; r < truth.NumRows(); ++r) {
      ++counts[static_cast<size_t>(col->GetCode(r))];
    }
    const size_t top = static_cast<size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    const std::string value =
        col->dictionary()->ValueOf(static_cast<int64_t>(top));
    auto f = CategoricalFraction(*reduced->GetTable("table_b").value(), "b",
                                 value);
    EXPECT_TRUE(f.ok());
    return f.value();
  };
  const double weak = frac_after(0.2);
  const double strong = frac_after(0.8);
  EXPECT_LT(strong, weak)
      << "a stronger removal correlation must deplete the value more";
}

INSTANTIATE_TEST_SUITE_P(Keeps, CorrelationMonotonicity,
                         ::testing::Values(0.3, 0.5, 0.7));

TEST(RemovalEdgeCases, ZeroCorrelationPreservesDistribution) {
  SyntheticConfig config;
  config.num_parents = 900;
  config.seed = 420;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.0;
  removal.seed = 421;
  auto reduced = ApplyBiasedRemoval(*db, removal);
  ASSERT_TRUE(reduced.ok());
  const Column* col =
      (*db->GetTable("table_b").value()).GetColumn("b").value();
  for (size_t code = 0; code < col->dictionary()->size(); ++code) {
    const std::string value =
        col->dictionary()->ValueOf(static_cast<int64_t>(code));
    auto before =
        CategoricalFraction(*db->GetTable("table_b").value(), "b", value);
    auto after = CategoricalFraction(*reduced->GetTable("table_b").value(),
                                     "b", value);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_NEAR(before.value(), after.value(), 0.05) << value;
  }
}

TEST(RemovalEdgeCases, InvalidParametersRejected) {
  SyntheticConfig config;
  config.num_parents = 30;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.0;  // invalid
  EXPECT_FALSE(ApplyBiasedRemoval(*db, removal).ok());
  removal.keep_rate = 0.5;
  removal.removal_correlation = 1.5;  // invalid
  EXPECT_FALSE(ApplyBiasedRemoval(*db, removal).ok());
  removal.removal_correlation = 0.5;
  removal.table = "nope";
  EXPECT_FALSE(ApplyBiasedRemoval(*db, removal).ok());
  removal.table = "table_b";
  removal.column = "nope";
  EXPECT_FALSE(ApplyBiasedRemoval(*db, removal).ok());
}

TEST(RemovalEdgeCases, UniformRemovalIgnoresColumnSemantics) {
  SyntheticConfig config;
  config.num_parents = 400;
  config.seed = 430;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  auto reduced = ApplyUniformRemoval(*db, "table_a", 0.7, 431);
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  const double ratio =
      static_cast<double>((*reduced->GetTable("table_a").value()).NumRows()) /
      400.0;
  EXPECT_NEAR(ratio, 0.7, 0.08);
}

class TfThinningGrid : public ::testing::TestWithParam<double> {};

TEST_P(TfThinningGrid, ObservedShareMatches) {
  const double tf_keep = GetParam();
  SyntheticConfig config;
  config.num_parents = 1200;
  config.seed = 440;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(ThinTupleFactors(&*db, tf_keep, 441).ok());
  const Table& a = *db->GetTable("table_a").value();
  const Column* tf = a.GetColumn("__tf_table_b").value();
  size_t observed = 0;
  for (size_t r = 0; r < a.NumRows(); ++r) {
    if (!tf->IsNull(r)) ++observed;
  }
  EXPECT_NEAR(static_cast<double>(observed) / a.NumRows(), tf_keep, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, TfThinningGrid,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.9));

}  // namespace
}  // namespace restore
