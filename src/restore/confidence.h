#ifndef RESTORE_RESTORE_CONFIDENCE_H_
#define RESTORE_RESTORE_CONFIDENCE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace restore {

/// A confidence interval plus the point estimate of the completed database
/// and the theoretical extremes (all / none of the missing tuples take the
/// queried value).
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
  double theoretical_min = 0.0;
  double theoretical_max = 0.0;
};

/// Per-tuple prediction certainty (Section 6):
///   C = 1 - exp(-KL(P_model || P_incomplete)),
/// i.e. 0 when the model merely reproduces the training marginal and -> 1
/// when the evidence makes the prediction sharply different from it.
double PredictionCertainty(const std::vector<float>& p_model,
                           const std::vector<double>& p_incomplete);

/// Confidence interval for a COUNT-fraction query: the fraction of tuples of
/// a (completed) table whose categorical attribute equals the code
/// `value_code`.
///
/// Inputs: per-synthesized-tuple predictive distributions `synth_probs`
/// (from CompletionResult::recorded_probs), the training marginal
/// `p_incomplete`, the number of existing tuples carrying / not carrying the
/// value, and the confidence level (e.g. 0.95 -> P_upper puts 95% mass on
/// the value, P_lower 5%).
ConfidenceInterval CountFractionInterval(
    const std::vector<std::vector<float>>& synth_probs,
    const std::vector<double>& p_incomplete, size_t value_code,
    size_t existing_with_value, size_t existing_total, double level = 0.95);

/// Confidence interval for an AVG query over a numeric attribute whose codes
/// have representative values `code_means` (ColumnDiscretizer::CodeMean).
/// P_upper/P_lower concentrate `level` mass on the extreme high/low codes.
ConfidenceInterval AvgInterval(
    const std::vector<std::vector<float>>& synth_probs,
    const std::vector<double>& p_incomplete,
    const std::vector<double>& code_means, double existing_sum,
    size_t existing_count, double level = 0.95);

}  // namespace restore

#endif  // RESTORE_RESTORE_CONFIDENCE_H_
