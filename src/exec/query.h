#ifndef RESTORE_EXEC_QUERY_H_
#define RESTORE_EXEC_QUERY_H_

#include <string>
#include <vector>

#include "storage/value.h"

namespace restore {

/// Aggregate functions supported by the SPJA workload (Table 1 of the paper).
enum class AggregateFunc {
  kCount,
  kSum,
  kAvg,
};

const char* AggregateFuncName(AggregateFunc func);

/// One aggregate in the SELECT list. `column` is empty for COUNT(*).
struct AggregateSpec {
  AggregateFunc func = AggregateFunc::kCount;
  std::string column;
};

/// Comparison operators usable in WHERE predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

/// A simple predicate `column <op> literal`. Conjunctions only (AND), which
/// covers the paper's entire workload; categorical columns support kEq/kNe.
///
/// Prepared queries may use a positional `?` placeholder instead of a
/// literal: `param_index` is then the 0-based parameter slot and `literal`
/// is unset until PreparedStatement::Bind substitutes it. Executors reject
/// queries that still contain unbound parameters.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
  int param_index = -1;
};

/// An acyclic Select-Project-Join-Aggregate query:
///   SELECT agg(col), ... FROM t1 NATURAL JOIN t2 ...
///   WHERE p1 AND p2 ... GROUP BY g1, g2 ...
/// Joins are equi-joins along foreign keys (resolved by the executor).
struct Query {
  std::vector<AggregateSpec> aggregates;
  std::vector<std::string> tables;
  std::vector<Predicate> predicates;
  std::vector<std::string> group_by;
  /// Number of positional `?` parameters (0 for fully-literal queries).
  size_t num_params = 0;

  /// True if every predicate carries a literal (no unbound `?` slots).
  bool IsFullyBound() const {
    for (const auto& p : predicates) {
      if (p.param_index >= 0) return false;
    }
    return true;
  }

  /// Round-trippable SQL rendering (for logging and reports).
  std::string ToSql() const;
};

}  // namespace restore

#endif  // RESTORE_EXEC_QUERY_H_
