#include "nn/deep_sets.h"

#include <cassert>

namespace restore {

DeepSetsEncoder::DeepSetsEncoder(const std::vector<TableSpec>& tables,
                                 size_t embed_dim, size_t phi_dim,
                                 size_t context_dim, Rng& rng)
    : embed_dim_(embed_dim), phi_dim_(phi_dim), context_dim_(context_dim) {
  for (const auto& spec : tables) {
    embeds_.emplace_back(spec.vocab_sizes, embed_dim_, rng);
    const size_t in_dim = spec.vocab_sizes.size() * embed_dim_;
    phi1_.emplace_back(in_dim, phi_dim_, rng);
    phi2_.emplace_back(phi_dim_, phi_dim_, rng);
  }
  rho_ = Dense(tables.size() * phi_dim_, context_dim_, rng);
}

void DeepSetsEncoder::Forward(const std::vector<ChildBatch>& children,
                              Matrix* context) {
  assert(children.size() == num_tables());
  children_cache_ = children;
  const size_t batch = children.empty() ? 0 : children[0].offsets.size() - 1;
  phi1_out_.assign(num_tables(), Matrix());
  phi2_out_.assign(num_tables(), Matrix());
  pooled_.Resize(batch, num_tables() * phi_dim_);
  pooled_.Fill(0.0f);  // sum-pooled into below

  for (size_t t = 0; t < num_tables(); ++t) {
    const ChildBatch& cb = children[t];
    assert(cb.offsets.size() == batch + 1);
    if (cb.codes.rows() > 0) {
      Matrix embedded;
      embeds_[t].Forward(cb.codes, &embedded);
      Matrix z1;
      phi1_[t].Forward(embedded, &z1);
      ReluInPlace(&z1);
      phi1_out_[t] = z1;
      Matrix z2;
      phi2_[t].Forward(z1, &z2);
      ReluInPlace(&z2);
      phi2_out_[t] = std::move(z2);
    }
    // Sum-pool children per evidence row (rows with no children stay zero —
    // the permutation-invariant encoding of the empty set).
    for (size_t r = 0; r < batch; ++r) {
      float* dst = pooled_.row(r) + t * phi_dim_;
      for (size_t c = cb.offsets[r]; c < cb.offsets[r + 1]; ++c) {
        const float* src = phi2_out_[t].row(c);
        for (size_t k = 0; k < phi_dim_; ++k) dst[k] += src[k];
      }
    }
  }
  Matrix z;
  rho_.Forward(pooled_, &z);
  ReluInPlace(&z);
  rho_out_ = z;
  *context = rho_out_;
}

void DeepSetsEncoder::Forward(const std::vector<ChildBatch>& children,
                              Matrix* context,
                              DeepSetsScratch* scratch) const {
  assert(children.size() == num_tables());
  const size_t batch = children.empty() ? 0 : children[0].offsets.size() - 1;
  scratch->pooled.Resize(batch, num_tables() * phi_dim_);
  scratch->pooled.Fill(0.0f);  // sum-pooled into below

  // Unlike the training Forward, each table is pooled immediately after its
  // phi MLP, so one set of per-table buffers serves every table. The float
  // ops and their order match the training path exactly (bit-identical
  // context), only the buffer lifetimes differ.
  for (size_t t = 0; t < num_tables(); ++t) {
    const ChildBatch& cb = children[t];
    assert(cb.offsets.size() == batch + 1);
    if (cb.codes.rows() > 0) {
      embeds_[t].ForwardInference(cb.codes, &scratch->embedded);
      phi1_[t].ForwardInference(scratch->embedded, &scratch->z1);
      ReluInPlace(&scratch->z1);
      phi2_[t].ForwardInference(scratch->z1, &scratch->z2);
      ReluInPlace(&scratch->z2);
    }
    // Sum-pool children per evidence row (rows with no children stay zero —
    // the permutation-invariant encoding of the empty set).
    for (size_t r = 0; r < batch; ++r) {
      float* dst = scratch->pooled.row(r) + t * phi_dim_;
      for (size_t c = cb.offsets[r]; c < cb.offsets[r + 1]; ++c) {
        const float* src = scratch->z2.row(c);
        for (size_t k = 0; k < phi_dim_; ++k) dst[k] += src[k];
      }
    }
  }
  rho_.ForwardInference(scratch->pooled, context);
  ReluInPlace(context);
}

void DeepSetsEncoder::Backward(const Matrix& dcontext) {
  Matrix dz = dcontext;
  ReluBackward(rho_out_, &dz);
  Matrix dpooled;
  rho_.Backward(dz, &dpooled);

  const size_t batch = dpooled.rows();
  for (size_t t = 0; t < num_tables(); ++t) {
    const ChildBatch& cb = children_cache_[t];
    if (cb.codes.rows() == 0) continue;
    // Un-pool: every child of row r receives the row's slice of dpooled.
    Matrix dphi2(cb.codes.rows(), phi_dim_);
    for (size_t r = 0; r < batch; ++r) {
      const float* src = dpooled.row(r) + t * phi_dim_;
      for (size_t c = cb.offsets[r]; c < cb.offsets[r + 1]; ++c) {
        float* dst = dphi2.row(c);
        for (size_t k = 0; k < phi_dim_; ++k) dst[k] = src[k];
      }
    }
    ReluBackward(phi2_out_[t], &dphi2);
    Matrix dphi1;
    phi2_[t].Backward(dphi2, &dphi1);
    ReluBackward(phi1_out_[t], &dphi1);
    Matrix dembed;
    phi1_[t].Backward(dphi1, &dembed);
    embeds_[t].Backward(dembed);
  }
}

void DeepSetsEncoder::CollectParams(std::vector<Param*>* params) {
  for (auto& e : embeds_) e.CollectParams(params);
  for (auto& l : phi1_) l.CollectParams(params);
  for (auto& l : phi2_) l.CollectParams(params);
  rho_.CollectParams(params);
}

}  // namespace restore
