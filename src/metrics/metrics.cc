#include "metrics/metrics.h"

#include <cmath>

namespace restore {

namespace {

double GroupError(const std::vector<double>& truth,
                  const std::vector<double>& est) {
  double err = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double t = truth[i];
    const double e = i < est.size() ? est[i] : 0.0;
    if (t == 0.0) {
      err += e == 0.0 ? 0.0 : 1.0;
    } else {
      err += std::abs(e - t) / std::abs(t);
    }
    ++n;
  }
  return n == 0 ? 0.0 : err / static_cast<double>(n);
}

}  // namespace

double AverageRelativeError(const QueryResult& truth,
                            const QueryResult& estimate) {
  if (truth.groups.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [key, values] : truth.groups) {
    auto it = estimate.groups.find(key);
    if (it == estimate.groups.end()) {
      total += 1.0;  // missing group: 100% relative error
    } else {
      total += GroupError(values, it->second);
    }
  }
  return total / static_cast<double>(truth.groups.size());
}

double RelativeErrorImprovement(const QueryResult& truth,
                                const QueryResult& incomplete,
                                const QueryResult& completed) {
  return AverageRelativeError(truth, incomplete) -
         AverageRelativeError(truth, completed);
}

double AverageRelativeError(const ResultSet& truth,
                            const ResultSet& estimate) {
  if (truth.num_rows() == 0) return 0.0;
  double total = 0.0;
  std::vector<std::string> key(truth.num_key_columns());
  std::vector<double> truth_vals(truth.num_value_columns());
  std::vector<double> est_vals(estimate.num_value_columns());
  // Truth rows are in key order (the order the map overload iterates in).
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    for (size_t c = 0; c < key.size(); ++c) key[c] = truth.key(r, c);
    const int64_t er = estimate.FindRow(key);
    if (er < 0) {
      total += 1.0;  // missing group: 100% relative error
      continue;
    }
    for (size_t c = 0; c < truth_vals.size(); ++c) {
      truth_vals[c] = truth.value(r, c);
    }
    for (size_t c = 0; c < est_vals.size(); ++c) {
      est_vals[c] = estimate.value(static_cast<size_t>(er), c);
    }
    total += GroupError(truth_vals, est_vals);
  }
  return total / static_cast<double>(truth.num_rows());
}

double RelativeErrorImprovement(const ResultSet& truth,
                                const ResultSet& incomplete,
                                const ResultSet& completed) {
  return AverageRelativeError(truth, incomplete) -
         AverageRelativeError(truth, completed);
}

Result<double> ColumnMean(const Table& table, const std::string& column) {
  RESTORE_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  double sum = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (col->IsNull(r)) continue;
    sum += col->GetNumeric(r);
    ++n;
  }
  if (n == 0) {
    return Status::FailedPrecondition("column has no non-null values");
  }
  return sum / static_cast<double>(n);
}

Result<double> CategoricalFraction(const Table& table,
                                   const std::string& column,
                                   const std::string& value) {
  RESTORE_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  if (col->type() != ColumnType::kCategorical) {
    return Status::InvalidArgument("column is not categorical");
  }
  if (table.NumRows() == 0) {
    return Status::FailedPrecondition("empty table");
  }
  auto code = col->dictionary()->Lookup(value);
  if (!code.ok()) return 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (!col->IsNull(r) && col->GetCode(r) == code.value()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(table.NumRows());
}

double BiasReduction(double true_stat, double incomplete_stat,
                     double completed_stat) {
  const double original_bias = std::abs(true_stat - incomplete_stat);
  if (original_bias < 1e-12) return 1.0;  // nothing to correct
  return 1.0 - std::abs(completed_stat - true_stat) / original_bias;
}

double CardinalityCorrection(size_t complete_rows, size_t incomplete_rows,
                             size_t completed_rows) {
  const double denom = std::abs(static_cast<double>(incomplete_rows) -
                                static_cast<double>(complete_rows));
  if (denom < 1e-12) return 1.0;
  const double num = std::abs(static_cast<double>(completed_rows) -
                              static_cast<double>(complete_rows));
  return 1.0 - num / denom;
}

}  // namespace restore
