#include "restore/stats_prometheus.h"

#include <cinttypes>
#include <cstdio>

#include "common/string_util.h"

namespace restore {

namespace {

/// Renders a sample value: integral values without a fraction (the common
/// case for counters), everything else with enough digits to round-trip.
std::string RenderValue(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -1e15 && value <= 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string PrometheusLabel(const std::string& name,
                            const std::string& value) {
  std::string out = name;
  out += "=\"";
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

std::string JoinPrometheusLabels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

void PrometheusRenderer::Add(const std::string& name, const std::string& help,
                             const std::string& type,
                             const std::string& labels, double value) {
  for (Family& family : families_) {
    if (family.name == name) {
      family.samples.push_back({labels, value});
      return;
    }
  }
  families_.push_back({name, help, type, {{labels, value}}});
}

void PrometheusRenderer::Counter(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels, double value) {
  Add(name, help, "counter", labels, value);
}

void PrometheusRenderer::Gauge(const std::string& name,
                               const std::string& help,
                               const std::string& labels, double value) {
  Add(name, help, "gauge", labels, value);
}

void PrometheusRenderer::AddDbStats(const std::string& labels,
                                    const Db::Stats& stats) {
  const struct {
    const char* outcome;
    uint64_t count;
  } outcomes[] = {
      {"ok", stats.queries_ok},
      {"cancelled", stats.queries_cancelled},
      {"deadline_exceeded", stats.queries_deadline_exceeded},
      {"failed", stats.queries_failed},
  };
  for (const auto& o : outcomes) {
    Counter("restore_queries_total", "Finished queries by outcome.",
            JoinPrometheusLabels(labels, PrometheusLabel("outcome", o.outcome)),
            static_cast<double>(o.count));
  }

  const ExecStats& t = stats.totals;
  const struct {
    const char* stage;
    double seconds;
  } stages[] = {
      {"parse", t.parse_seconds},         {"plan", t.plan_seconds},
      {"selection", t.selection_seconds}, {"sample", t.sample_seconds},
      {"aggregate", t.aggregate_seconds}, {"batch_wait", t.batch_wait_seconds},
  };
  for (const auto& s : stages) {
    Counter("restore_query_stage_seconds_total",
            "Wall-clock seconds spent per query pipeline stage, summed over "
            "finished queries.",
            JoinPrometheusLabels(labels, PrometheusLabel("stage", s.stage)),
            s.seconds);
  }

  Counter("restore_tuples_completed_total",
          "Tuples synthesized by completion models.", labels,
          static_cast<double>(t.tuples_completed));
  Counter("restore_models_consulted_total",
          "PathModel lookups performed by queries.", labels,
          static_cast<double>(t.models_consulted));
  Counter("restore_cache_hits_total", "Completion-cache hits.", labels,
          static_cast<double>(t.cache_hits));
  Counter("restore_cache_misses_total", "Completion-cache misses.", labels,
          static_cast<double>(t.cache_misses));
  Counter("restore_arenas_leased_total",
          "Inference scratch arenas leased by queries.", labels,
          static_cast<double>(t.arenas_leased));
  Counter("restore_batches_joined_total",
          "Coalesced forward passes shared with at least one other request.",
          labels, static_cast<double>(t.batches_joined));
  Counter("restore_coalesced_rows_total",
          "Stacked rows of coalesced sampling batches queries participated "
          "in.",
          labels, static_cast<double>(t.coalesced_rows));

  Counter("restore_rows_ingested_total",
          "Rows appended to base relations via Db::Append.", labels,
          static_cast<double>(stats.rows_ingested));
  Counter("restore_tables_updated_total",
          "Whole-table replacements applied via Db::UpdateTable.", labels,
          static_cast<double>(stats.tables_updated));
  Counter("restore_models_refreshed_total",
          "Path models hot-swapped to a new generation after retraining.",
          labels, static_cast<double>(stats.models_refreshed));
  Counter("restore_refresh_failures_total",
          "Background retrains that failed (previous generation kept "
          "serving).",
          labels, static_cast<double>(stats.refresh_failures));
  Counter("restore_generations_retired_total",
          "Model generations superseded by a hot swap.", labels,
          static_cast<double>(stats.generations_retired));
  Counter("restore_refresh_retries_total",
          "Retrain retries after a transient failure (exponential backoff).",
          labels, static_cast<double>(stats.refresh_retries));
  Counter("restore_breaker_open_total",
          "Times a path's circuit breaker opened after consecutive training "
          "failures.",
          labels, static_cast<double>(stats.breaker_open_total));
  Gauge("restore_breakers_open",
        "Paths whose circuit breaker is open right now (serving their last "
        "good generation, or failing fast with no generation).",
        labels, static_cast<double>(stats.breakers_open));
  Gauge("restore_refresh_failure_streak",
        "Consecutive background retrain failures since the last success.",
        labels, static_cast<double>(stats.refresh_failure_streak));
  Counter("restore_save_failures_total",
          "SaveModels calls that failed (the previous committed generation "
          "stays loadable).",
          labels, static_cast<double>(stats.save_failures));
  Gauge("restore_db_epoch", "Data/model visibility epoch (0 = frozen Db).",
        labels, static_cast<double>(stats.epoch));
}

void PrometheusRenderer::AddDbFreshness(const std::string& labels,
                                        const std::vector<ModelInfo>& models) {
  for (const ModelInfo& info : models) {
    const std::string path_labels = JoinPrometheusLabels(
        labels, PrometheusLabel("path", Join(info.path, "->")));
    Gauge("restore_model_staleness_rows",
          "Rows ingested into a path's tables since its serving model was "
          "trained.",
          path_labels, static_cast<double>(info.staleness_rows));
    Gauge("restore_model_generation",
          "Generation number of the serving model for a path.", path_labels,
          static_cast<double>(info.generation));
    Gauge("restore_model_breaker_open",
          "1 when the path's circuit breaker is open (retrains fail fast; "
          "the last good generation keeps serving).",
          path_labels, info.breaker_open ? 1.0 : 0.0);
    // Models restored from a pre-v4 manifest have no training reference to
    // score against — they emit no drift samples rather than a fake zero.
    if (info.drift_available) {
      Gauge("restore_model_drift",
            "Distribution drift of a path's current data against its "
            "serving model's training-time reference (ks = worst per-column "
            "two-sample KS statistic, psi = worst population stability "
            "index).",
            JoinPrometheusLabels(path_labels, PrometheusLabel("stat", "ks")),
            info.drift_ks);
      Gauge("restore_model_drift",
            "Distribution drift of a path's current data against its "
            "serving model's training-time reference (ks = worst per-column "
            "two-sample KS statistic, psi = worst population stability "
            "index).",
            JoinPrometheusLabels(path_labels, PrometheusLabel("stat", "psi")),
            info.drift_psi);
    }
  }
}

std::string PrometheusRenderer::Render() const {
  std::string out;
  for (const Family& family : families_) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + family.type + "\n";
    for (const Sample& sample : family.samples) {
      out += family.name;
      if (!sample.labels.empty()) out += "{" + sample.labels + "}";
      out += " " + RenderValue(sample.value) + "\n";
    }
  }
  return out;
}

std::string StatsToPrometheus(const Db::Stats& stats,
                              const std::string& labels) {
  PrometheusRenderer out;
  out.AddDbStats(labels, stats);
  return out.Render();
}

}  // namespace restore
